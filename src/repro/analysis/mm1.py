"""Classic queueing formulas (validation baselines).

All functions take utilization ``rho`` in [0, 1) and, where relevant, a
``mean_service`` time in seconds. These are the analytic ground truths
the simulators are tested against: a single server fed Poisson/Exp must
reproduce M/M/1; a cluster under the oracle policy must fall between
M/M/k and k×M/M/1.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "mm1_queue_length_pmf",
    "mm1_mean_queue_length",
    "mm1_mean_waiting_time",
    "mm1_mean_response_time",
    "mg1_mean_response_time",
    "erlang_c",
    "mmk_mean_response_time",
    "mmk_mean_queue_length",
]


def _check_rho(rho: float) -> None:
    if not 0 <= rho < 1:
        raise ValueError(f"rho must be in [0, 1), got {rho}")


def mm1_queue_length_pmf(rho: float, k_max: int) -> np.ndarray:
    """P(Q = k) for k = 0..k_max in a stationary M/M/1 queue.

    The paper (§2.1) uses the limiting distribution
    ``P(Q = k) = (1 - rho) rho^k`` (Kleinrock vol. I).
    """
    _check_rho(rho)
    if k_max < 0:
        raise ValueError(f"k_max must be >= 0, got {k_max}")
    k = np.arange(k_max + 1)
    return (1.0 - rho) * rho**k


def mm1_mean_queue_length(rho: float) -> float:
    """E[Q] = rho / (1 - rho) (number in system)."""
    _check_rho(rho)
    return rho / (1.0 - rho)


def mm1_mean_waiting_time(rho: float, mean_service: float) -> float:
    """Expected time in queue (excluding service)."""
    _check_rho(rho)
    return rho * mean_service / (1.0 - rho)


def mm1_mean_response_time(rho: float, mean_service: float) -> float:
    """Expected time in system (queue + service)."""
    _check_rho(rho)
    return mean_service / (1.0 - rho)


def mg1_mean_response_time(
    rho: float, mean_service: float, service_scv: float
) -> float:
    """Pollaczek–Khinchine: M/G/1 expected response time.

    ``service_scv`` is the squared coefficient of variation
    Var[S]/E[S]^2 — 1 for exponential, 0 for deterministic, ≈4.7 for the
    Medium-Grain trace. The heavy Medium-Grain tail is why its Table 2
    response times are an order of magnitude above its service time.
    """
    _check_rho(rho)
    if service_scv < 0:
        raise ValueError(f"service_scv must be >= 0, got {service_scv}")
    waiting = rho * mean_service * (1.0 + service_scv) / (2.0 * (1.0 - rho))
    return mean_service + waiting


def erlang_c(k: int, offered: float) -> float:
    """Erlang-C: probability an arrival waits in an M/M/k queue.

    ``offered`` is the offered load a = lambda * E[S] (in Erlangs);
    requires a < k for stability.
    """
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    if not 0 <= offered < k:
        raise ValueError(f"need 0 <= offered < k, got {offered} (k={k})")
    if offered == 0:
        return 0.0
    # Stable iterative computation of the Erlang-B recursion, then C.
    b = 1.0
    for i in range(1, k + 1):
        b = offered * b / (i + offered * b)
    rho = offered / k
    return b / (1.0 - rho + rho * b)


def mmk_mean_response_time(k: int, rho: float, mean_service: float) -> float:
    """Expected response time of an M/M/k queue at per-server load rho."""
    _check_rho(rho)
    offered = rho * k
    wait_prob = erlang_c(k, offered)
    expected_wait = wait_prob * mean_service / (k * (1.0 - rho))
    return mean_service + expected_wait


def mmk_mean_queue_length(k: int, rho: float) -> float:
    """Expected number in system for M/M/k (Little on response time)."""
    _check_rho(rho)
    # lambda = rho * k / E[S]; E[N] = lambda * E[T]
    return rho * k * mmk_mean_response_time(k, rho, 1.0)
