"""Analytical models and statistics.

- :mod:`~repro.analysis.mm1` — M/M/1, M/G/1 (Pollaczek–Khinchine) and
  M/M/k (Erlang-C) formulas used to validate the simulators.
- :mod:`~repro.analysis.inaccuracy` — the paper's load-index inaccuracy
  metric (§2.1): the Eq. 1 closed form ``2ρ/(1−ρ²)`` and its empirical
  measurement on a recorded queue-length step function, plus a
  vectorized single-FIFO-server queue simulator (no DES needed).
- :mod:`~repro.analysis.supermarket` — Mitzenmacher's power-of-d mean
  field model (SPAA'97), which the paper invokes to explain why poll
  size 2 captures most of the benefit.
- :mod:`~repro.analysis.stats` — Welford online moments, batch-means
  confidence intervals, and a P² streaming quantile estimator.
"""

from repro.analysis.mm1 import (
    erlang_c,
    mg1_mean_response_time,
    mm1_mean_queue_length,
    mm1_mean_response_time,
    mm1_mean_waiting_time,
    mm1_queue_length_pmf,
    mmk_mean_response_time,
)
from repro.analysis.inaccuracy import (
    eq1_upperbound,
    eq1_upperbound_series,
    fifo_queue_length_steps,
    measure_inaccuracy,
)
from repro.analysis.supermarket import (
    supermarket_fixed_point,
    supermarket_mean_queue_length,
    supermarket_mean_response_time,
    supermarket_ode_trajectory,
)
from repro.analysis.stats import (
    OnlineStats,
    P2Quantile,
    batch_means_ci,
    summarize,
)

__all__ = [
    "OnlineStats",
    "P2Quantile",
    "batch_means_ci",
    "eq1_upperbound",
    "eq1_upperbound_series",
    "erlang_c",
    "fifo_queue_length_steps",
    "measure_inaccuracy",
    "mg1_mean_response_time",
    "mm1_mean_queue_length",
    "mm1_mean_response_time",
    "mm1_mean_waiting_time",
    "mm1_queue_length_pmf",
    "mmk_mean_response_time",
    "summarize",
    "supermarket_fixed_point",
    "supermarket_mean_queue_length",
    "supermarket_mean_response_time",
    "supermarket_ode_trajectory",
]
