"""Experiment configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["SimulationConfig"]

_MODELS = ("simulation", "prototype")
_ENGINES = ("heap", "calendar", "fast")

#: ServiceCluster keyword arguments a config may forward (kept JSON-native
#: so cache keys survive an archive round trip)
_CLUSTER_PARAM_KEYS = frozenset(
    {
        "availability",
        "availability_refresh",
        "availability_ttl",
        "request_timeout",
        "max_retries",
        "server_max_queue",
        "record_server_queues",
        "reselect_delay",
    }
)

#: literal mirror of :class:`repro.cluster.failures.ChaosSpec` field names
#: (kept as a literal so this module stays import-light; a unit test
#: cross-checks it against the dataclass)
_CHAOS_PARAM_KEYS = frozenset(
    {
        "loss",
        "duplicate",
        "jitter_mean",
        "stragglers",
        "straggle_factor",
        "straggle_frac",
        "partitions",
        "partition_frac",
        "partition_servers",
        "storms",
        "storm_size",
        "storm_frac",
        "dispatcher_storms",
        "dispatcher_storm_size",
        "dispatcher_storm_frac",
        "dispatcher_partitions",
        "dispatcher_partition_frac",
    }
)

#: literal mirror of :class:`repro.telemetry.TelemetryCollector` knobs
#: (cross-checked against the constructor by a unit test)
_TELEMETRY_PARAM_KEYS = frozenset({"spans", "sample_interval", "max_spans"})

#: literal mirror of :class:`repro.cluster.reliability.ReliabilityPolicy`
#: field names (cross-checked against the dataclass by a unit test)
_RELIABILITY_PARAM_KEYS = frozenset(
    {
        "deadline",
        "backoff_base",
        "backoff_mult",
        "backoff_cap",
        "backoff_jitter",
        "retry_budget",
        "retry_budget_refill",
        "hedge_quantile",
        "hedge_min_samples",
        "hedge_window",
        "breaker_threshold",
        "breaker_cooldown",
    }
)

#: literal mirror of :class:`repro.cluster.overload.OverloadPolicy`
#: field names (cross-checked against the dataclass by a unit test)
_OVERLOAD_PARAM_KEYS = frozenset(
    {
        "sojourn_target",
        "interval",
        "ewma_alpha",
        "shed_jitter",
        "fast_reject",
        "withdraw_after",
    }
)

#: literal mirror of :class:`repro.cluster.dispatcher.DispatcherPolicy`
#: field names (cross-checked against the dataclass by a unit test)
_DISPATCHER_PARAM_KEYS = frozenset(
    {
        "count",
        "assignment",
        "suspect_cooldown",
        "view_lag",
        "admit_sojourn_target",
        "admit_interval",
        "admit_ewma_alpha",
        "breaker_threshold",
        "breaker_cooldown",
    }
)

#: literal mirror of :class:`repro.cluster.autoscaler.AutoscalerPolicy`
#: field names (cross-checked against the dataclass by a unit test)
_AUTOSCALER_PARAM_KEYS = frozenset(
    {
        "interval",
        "min_servers",
        "max_servers",
        "initial_servers",
        "shed_high",
        "p95_high",
        "util_low",
        "ewma_alpha",
        "step_up",
        "step_down",
        "cooldown",
    }
)

#: literal mirror of :class:`repro.verify.InvariantOracle` constructor
#: knobs (cross-checked against the signature by a unit test)
_VERIFY_PARAM_KEYS = frozenset(
    {
        "enabled",
        "check_interval",
    }
)


@dataclass(frozen=True)
class SimulationConfig:
    """One cluster run: policy × workload × load × model.

    ``model`` selects the paper's §2 pure simulation ("simulation") or
    the §4 prototype-fidelity model ("prototype"): the latter adds the
    overhead model and interprets ``load`` against the empirically
    calibrated full-load point (98%-under-2s rule) instead of nominal
    utilization.

    ``overhead_params`` override :class:`PrototypeOverheadModel` fields;
    ``full_load_rho`` short-circuits the calibration bisection when the
    caller has already computed it (the sweep drivers do this once per
    workload).

    ``engine`` selects the execution engine: "heap" and "calendar" are
    exact event-queue implementations producing bit-identical results
    (a pure performance knob), while "fast" is the numpy batch engine
    (:mod:`repro.sim.fastpath`) — distribution-identical, not
    bit-identical, and restricted to the homogeneous simulation-model
    policies (unsupported knobs raise ``FastpathUnsupportedError``
    instead of silently falling back). The field participates in the
    result-cache key so engine comparisons never alias each other's
    cache entries.

    ``cluster_params`` forwards extra :class:`ServiceCluster` keyword
    arguments (availability subsystem, request timeouts, admission
    control); ``chaos_params`` — :class:`ChaosSpec` knobs — installs a
    chaos injector for the run. Both must contain only JSON-native
    scalars so cache keys survive an archive round trip.

    ``telemetry`` — :class:`repro.telemetry.TelemetryCollector` knobs
    (``spans``, ``sample_interval``, ``max_spans``) — opts the run into
    request-lifecycle telemetry; an empty dict (the default) means off
    and keeps every hot path exactly as before. Telemetry never changes
    simulation results (no events, no RNG draws — DESIGN.md §10), only
    what is *recorded* about them.

    ``reliability_params`` — :class:`repro.cluster.reliability.
    ReliabilityPolicy` knobs (deadline budgets, backoff, retry budgets,
    hedging, circuit breakers) — installs the request reliability layer
    for the run; an empty dict (the default) keeps the naive lifecycle
    bit-identical to pre-reliability builds (DESIGN.md §11). The field
    participates in the result-cache key, so hardened and naive runs
    never alias each other's cache entries.

    ``overload_params`` — :class:`repro.cluster.overload.OverloadPolicy`
    knobs (CoDel-style adaptive admission, fast-reject NACKs,
    load-aware availability withdrawal) — installs per-server overload
    controllers for the run; an empty dict (the default) keeps every
    path bit-identical to pre-overload builds (DESIGN.md §12). Like the
    other param dicts, it participates in the result-cache key.

    ``dispatcher_params`` — :class:`repro.cluster.dispatcher.
    DispatcherPolicy` knobs (tier size, client→dispatcher assignment,
    failover suspicion, tier admission, per-dispatcher breakers, stale
    view lag) — routes every request through a fault-tolerant
    dispatcher tier instead of direct client→server selection; an empty
    dict (the default) keeps every path bit-identical to pre-tier
    builds (DESIGN.md §16). ``autoscaler_params`` — :class:`repro.
    cluster.autoscaler.AutoscalerPolicy` knobs (control interval,
    size bounds, shed/p95/utilization thresholds) — installs the
    closed-loop autoscaler, which requires the availability subsystem
    (scale actions actuate via publish/withdrawal). Both participate in
    the result-cache key.

    ``verify_params`` — :class:`repro.verify.InvariantOracle` knobs
    (``enabled``, ``check_interval``) — installs the inline invariant
    oracle (DESIGN.md §17). The oracle draws no randomness and
    schedules no events, so verify-enabled runs stay bit-identical
    across both exact engines; an empty dict (the default) keeps
    ``cluster.oracle`` as ``None`` and every code path bit-identical
    to pre-oracle builds.
    """

    policy: str = "polling"
    policy_params: dict[str, Any] = field(default_factory=dict)
    workload: str = "poisson_exp"
    workload_params: dict[str, Any] = field(default_factory=dict)
    load: float = 0.9
    n_servers: int = 16
    n_clients: int = 6
    n_requests: int = 20_000
    seed: int = 0
    model: str = "simulation"
    warmup_fraction: float = 0.1
    workers: int = 1
    server_speeds: Optional[tuple[float, ...]] = None
    overhead_params: dict[str, Any] = field(default_factory=dict)
    full_load_rho: Optional[float] = None
    label: str = ""
    engine: str = "heap"
    cluster_params: dict[str, Any] = field(default_factory=dict)
    chaos_params: dict[str, Any] = field(default_factory=dict)
    telemetry: dict[str, Any] = field(default_factory=dict)
    reliability_params: dict[str, Any] = field(default_factory=dict)
    overload_params: dict[str, Any] = field(default_factory=dict)
    dispatcher_params: dict[str, Any] = field(default_factory=dict)
    autoscaler_params: dict[str, Any] = field(default_factory=dict)
    verify_params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.model not in _MODELS:
            raise ValueError(f"model must be one of {_MODELS}, got {self.model!r}")
        if self.engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, got {self.engine!r}")
        unknown = set(self.cluster_params) - _CLUSTER_PARAM_KEYS
        if unknown:
            raise ValueError(
                f"unknown cluster_params key(s): {sorted(unknown)} "
                f"(allowed: {sorted(_CLUSTER_PARAM_KEYS)})"
            )
        unknown = set(self.chaos_params) - _CHAOS_PARAM_KEYS
        if unknown:
            raise ValueError(
                f"unknown chaos_params key(s): {sorted(unknown)} "
                f"(allowed: {sorted(_CHAOS_PARAM_KEYS)})"
            )
        unknown = set(self.telemetry) - _TELEMETRY_PARAM_KEYS
        if unknown:
            raise ValueError(
                f"unknown telemetry key(s): {sorted(unknown)} "
                f"(allowed: {sorted(_TELEMETRY_PARAM_KEYS)})"
            )
        unknown = set(self.reliability_params) - _RELIABILITY_PARAM_KEYS
        if unknown:
            raise ValueError(
                f"unknown reliability_params key(s): {sorted(unknown)} "
                f"(allowed: {sorted(_RELIABILITY_PARAM_KEYS)})"
            )
        unknown = set(self.overload_params) - _OVERLOAD_PARAM_KEYS
        if unknown:
            raise ValueError(
                f"unknown overload_params key(s): {sorted(unknown)} "
                f"(allowed: {sorted(_OVERLOAD_PARAM_KEYS)})"
            )
        unknown = set(self.dispatcher_params) - _DISPATCHER_PARAM_KEYS
        if unknown:
            raise ValueError(
                f"unknown dispatcher_params key(s): {sorted(unknown)} "
                f"(allowed: {sorted(_DISPATCHER_PARAM_KEYS)})"
            )
        unknown = set(self.autoscaler_params) - _AUTOSCALER_PARAM_KEYS
        if unknown:
            raise ValueError(
                f"unknown autoscaler_params key(s): {sorted(unknown)} "
                f"(allowed: {sorted(_AUTOSCALER_PARAM_KEYS)})"
            )
        unknown = set(self.verify_params) - _VERIFY_PARAM_KEYS
        if unknown:
            raise ValueError(
                f"unknown verify_params key(s): {sorted(unknown)} "
                f"(allowed: {sorted(_VERIFY_PARAM_KEYS)})"
            )
        if not 0 < self.load:
            raise ValueError(f"load must be > 0, got {self.load}")
        if self.n_requests < 10:
            raise ValueError(f"n_requests must be >= 10, got {self.n_requests}")
        if not 0 <= self.warmup_fraction < 1:
            raise ValueError(
                f"warmup_fraction must be in [0, 1), got {self.warmup_fraction}"
            )

    def with_updates(self, **changes: Any) -> "SimulationConfig":
        """A copy with the given fields replaced."""
        from dataclasses import replace

        return replace(self, **changes)

    def describe(self) -> str:
        if self.label:
            return self.label
        params = ",".join(f"{k}={v}" for k, v in sorted(self.policy_params.items()))
        chaos = " +chaos" if self.chaos_params else ""
        hardened = " +reliability" if self.reliability_params else ""
        shedding = " +overload" if self.overload_params else ""
        tier = " +dispatchers" if self.dispatcher_params else ""
        scaling = " +autoscale" if self.autoscaler_params else ""
        verify = " +verify" if self.verify_params else ""
        return (
            f"{self.policy}({params}) {self.workload} load={self.load:.0%} "
            f"[{self.model}]{chaos}{hardened}{shedding}{tier}{scaling}{verify}"
        )
