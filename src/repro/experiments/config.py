"""Experiment configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

__all__ = ["SimulationConfig"]

_MODELS = ("simulation", "prototype")
_ENGINES = ("heap", "calendar")


@dataclass(frozen=True)
class SimulationConfig:
    """One cluster run: policy × workload × load × model.

    ``model`` selects the paper's §2 pure simulation ("simulation") or
    the §4 prototype-fidelity model ("prototype"): the latter adds the
    overhead model and interprets ``load`` against the empirically
    calibrated full-load point (98%-under-2s rule) instead of nominal
    utilization.

    ``overhead_params`` override :class:`PrototypeOverheadModel` fields;
    ``full_load_rho`` short-circuits the calibration bisection when the
    caller has already computed it (the sweep drivers do this once per
    workload).

    ``engine`` selects the event-queue implementation ("heap" or
    "calendar"); both produce bit-identical results, so this is purely
    a performance knob — but it participates in the result-cache key
    so engine comparisons never alias each other's cache entries.
    """

    policy: str = "polling"
    policy_params: dict[str, Any] = field(default_factory=dict)
    workload: str = "poisson_exp"
    workload_params: dict[str, Any] = field(default_factory=dict)
    load: float = 0.9
    n_servers: int = 16
    n_clients: int = 6
    n_requests: int = 20_000
    seed: int = 0
    model: str = "simulation"
    warmup_fraction: float = 0.1
    workers: int = 1
    server_speeds: Optional[tuple[float, ...]] = None
    overhead_params: dict[str, Any] = field(default_factory=dict)
    full_load_rho: Optional[float] = None
    label: str = ""
    engine: str = "heap"

    def __post_init__(self) -> None:
        if self.model not in _MODELS:
            raise ValueError(f"model must be one of {_MODELS}, got {self.model!r}")
        if self.engine not in _ENGINES:
            raise ValueError(f"engine must be one of {_ENGINES}, got {self.engine!r}")
        if not 0 < self.load:
            raise ValueError(f"load must be > 0, got {self.load}")
        if self.n_requests < 10:
            raise ValueError(f"n_requests must be >= 10, got {self.n_requests}")
        if not 0 <= self.warmup_fraction < 1:
            raise ValueError(
                f"warmup_fraction must be in [0, 1), got {self.warmup_fraction}"
            )

    def with_updates(self, **changes: Any) -> "SimulationConfig":
        """A copy with the given fields replaced."""
        from dataclasses import replace

        return replace(self, **changes)

    def describe(self) -> str:
        if self.label:
            return self.label
        params = ",".join(f"{k}={v}" for k, v in sorted(self.policy_params.items()))
        return (
            f"{self.policy}({params}) {self.workload} load={self.load:.0%} "
            f"[{self.model}]"
        )
