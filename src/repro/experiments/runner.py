"""Build and run configured experiments, serially or in parallel.

Parallelism model (per the hpc-parallel guides): each configuration is
an independent, CPU-bound, pure-Python simulation, so sweeps fan out
over a ``ProcessPoolExecutor`` (threads would serialize on the GIL).
Determinism is preserved because every config carries its own seed and
all randomness flows through named substreams — results are identical
whether a sweep runs serially, in parallel, or reordered.
"""

from __future__ import annotations

import math
import os
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Optional, Sequence

import numpy as np

from repro.cluster.failures import resilience_counters
from repro.cluster.system import ClusterMetrics, ServiceCluster
from repro.core.registry import make_policy
from repro.experiments.config import SimulationConfig
from repro.prototype.calibration import calibrate_full_load
from repro.prototype.overhead import PrototypeOverheadModel
from repro.sim.rng import RngHub
from repro.workload.workloads import make_workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.cache import ResultCache
    from repro.telemetry import TelemetryReport

__all__ = [
    "SimulationResult",
    "auto_chunksize",
    "build_cluster",
    "run_simulation",
    "run_fast_simulation",
    "run_with_telemetry",
    "parallel_sweep",
]

#: process-local cache of full-load calibrations keyed by workload identity
_CALIBRATION_CACHE: dict[tuple, float] = {}

#: fixed seed for calibration probes — full load is a property of the
#: workload + overhead model, not of any particular experiment run
_CALIBRATION_SEED = 424242

#: counters exported by policies into SimulationResult.policy_counters
_POLICY_COUNTER_ATTRS = (
    "polls_sent",
    "replies_received",
    "replies_discarded",
    "timeouts_fired",
    "broadcasts_sent",
    "queries_served",
    "refreshes",
)


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one configured run (times in seconds)."""

    config: SimulationConfig
    mean_response_time: float
    p50_response_time: float
    p90_response_time: float
    p99_response_time: float
    mean_poll_time: float
    n_measured: int
    n_failed: int
    nominal_rho: float
    wall_seconds: float
    events_executed: int
    message_counts: dict[str, int] = field(default_factory=dict)
    policy_counters: dict[str, int] = field(default_factory=dict)
    stolen_cpu: float = 0.0
    server_counts: tuple[int, ...] = ()
    p95_response_time: float = math.nan
    #: resilience counters from :func:`repro.cluster.resilience_counters`
    #: (empty for runs without a chaos injector)
    chaos_counters: dict[str, float] = field(default_factory=dict)
    #: staleness/span digest from
    #: :meth:`repro.telemetry.TelemetryCollector.summary` (empty for
    #: runs without telemetry; full spans/series live in the
    #: :class:`~repro.telemetry.TelemetryReport`, not here)
    telemetry_summary: dict[str, float] = field(default_factory=dict)

    @property
    def mean_response_time_ms(self) -> float:
        return self.mean_response_time * 1e3

    @property
    def mean_poll_time_ms(self) -> float:
        return self.mean_poll_time * 1e3


def _resolve_nominal_rho(config: SimulationConfig, overhead) -> float:
    """Requested load level -> nominal per-server utilization."""
    if config.model == "simulation":
        return config.load
    if config.full_load_rho is not None:
        return config.load * config.full_load_rho
    return config.load * full_load_rho_for(config, overhead)


def full_load_rho_for(config: SimulationConfig, overhead=None) -> float:
    """Calibrated 100%-load nominal utilization for a config's workload.

    Cached per (workload, workload_params, overhead) within the process.
    """
    overhead = overhead or _overhead_for(config)
    key = (
        config.workload,
        tuple(sorted(config.workload_params.items())),
        overhead,
    )
    cached = _CALIBRATION_CACHE.get(key)
    if cached is None:
        workload = make_workload(config.workload, **config.workload_params)
        calibration = calibrate_full_load(workload, overhead, seed=_CALIBRATION_SEED)
        cached = calibration.nominal_rho_at_full_load
        _CALIBRATION_CACHE[key] = cached
    return cached


def _overhead_for(config: SimulationConfig) -> Optional[PrototypeOverheadModel]:
    if config.model != "prototype":
        return None
    return PrototypeOverheadModel(**config.overhead_params)


def build_cluster(config: SimulationConfig) -> tuple[ServiceCluster, float]:
    """Construct the cluster + workload for a config.

    Returns ``(cluster, nominal_rho)``; the workload is already loaded.
    """
    if config.engine == "fast":
        raise ValueError(
            "engine='fast' has no object cluster; use run_simulation() "
            "(which routes to repro.sim.fastpath) or pick an exact "
            "engine ('heap'/'calendar') for cluster-level access"
        )
    overhead = _overhead_for(config)
    nominal_rho = _resolve_nominal_rho(config, overhead)
    workload = make_workload(config.workload, **config.workload_params)
    hub = RngHub(config.seed)
    gaps, services = workload.generate(hub.stream("workload"), config.n_requests)
    mean_service = float(services.mean())
    target_interval = mean_service / (config.n_servers * nominal_rho)
    gaps = gaps * (target_interval / float(gaps.mean()))

    policy = make_policy(config.policy, **config.policy_params)
    reliability = None
    if config.reliability_params:
        from repro.cluster.reliability import ReliabilityPolicy

        reliability = ReliabilityPolicy(**config.reliability_params)
    overload = None
    if config.overload_params:
        from repro.cluster.overload import OverloadPolicy

        overload = OverloadPolicy(**config.overload_params)
    dispatcher = None
    if config.dispatcher_params:
        from repro.cluster.dispatcher import DispatcherPolicy

        dispatcher = DispatcherPolicy(**config.dispatcher_params)
    autoscaler = None
    if config.autoscaler_params:
        from repro.cluster.autoscaler import AutoscalerPolicy

        autoscaler = AutoscalerPolicy(**config.autoscaler_params)
    cluster = ServiceCluster(
        n_servers=config.n_servers,
        policy=policy,
        seed=config.seed,
        n_clients=config.n_clients,
        overhead=overhead,
        workers=config.workers,
        server_speeds=list(config.server_speeds) if config.server_speeds else None,
        engine=config.engine,
        reliability=reliability,
        overload=overload,
        dispatcher=dispatcher,
        autoscaler=autoscaler,
        **config.cluster_params,
    )
    cluster.load_workload(gaps, services)
    if config.chaos_params:
        from repro.cluster.failures import ChaosInjector, ChaosSpec

        cluster.chaos = ChaosInjector(cluster, spec=ChaosSpec(**config.chaos_params))
    if config.telemetry:
        from repro.telemetry import TelemetryCollector

        cluster.telemetry = TelemetryCollector(cluster, **config.telemetry)
    if config.verify_params:
        from repro.verify import InvariantOracle

        oracle = InvariantOracle(cluster, **config.verify_params)
        if oracle.enabled:
            cluster.oracle = oracle
    return cluster, nominal_rho


def run_simulation(config: SimulationConfig) -> SimulationResult:
    """Run one configuration to completion and summarize.

    ``engine="fast"`` routes to the numpy batch engine
    (:mod:`repro.sim.fastpath`); configs it cannot represent raise
    :class:`~repro.sim.fastpath.FastpathUnsupportedError` — never a
    silent fallback to an exact engine.
    """
    if config.engine == "fast":
        return run_fast_simulation(config)
    started = time.perf_counter()
    cluster, nominal_rho = build_cluster(config)
    return _summarize_run(config, cluster, nominal_rho, started)


def run_fast_simulation(config: SimulationConfig) -> SimulationResult:
    """Run one config under the vectorized batch engine.

    The result carries the same summary fields as an exact-engine run;
    ``events_executed`` counts *batch ticks*, not per-object events, so
    throughput comparisons across engines should use requests/sec.
    """
    from repro.sim.fastpath import run_fastpath

    started = time.perf_counter()
    run = run_fastpath(config, record_occupancy=False)
    summary = run.metrics.summary(config.warmup_fraction)
    return SimulationResult(
        config=config,
        mean_response_time=summary["mean_response_time"],
        p50_response_time=summary["p50_response_time"],
        p90_response_time=summary["p90_response_time"],
        p99_response_time=summary["p99_response_time"],
        mean_poll_time=summary["mean_poll_time"],
        n_measured=summary["n_measured"],
        n_failed=summary["n_failed"],
        nominal_rho=run.nominal_rho,
        wall_seconds=time.perf_counter() - started,
        events_executed=run.ticks,
        message_counts=dict(run.message_counts),
        policy_counters=dict(run.policy_counters),
        stolen_cpu=0.0,
        server_counts=tuple(
            int(v)
            for v in run.metrics.server_counts(config.n_servers, config.warmup_fraction)
        ),
        p95_response_time=summary["p95_response_time"],
    )


def run_with_telemetry(
    config: SimulationConfig,
) -> tuple[SimulationResult, "TelemetryReport"]:
    """Run one configuration with telemetry and return the full report.

    A config without a ``telemetry`` block is opted in with the default
    collector settings; the simulation outcome is bit-identical to the
    telemetry-off run of the same config (telemetry only records).
    """
    if config.engine == "fast":
        raise ValueError(
            "telemetry requires an exact engine (heap/calendar); "
            "engine='fast' does not execute per-request lifecycles"
        )
    if not config.telemetry:
        config = config.with_updates(telemetry={"spans": True})
    started = time.perf_counter()
    cluster, nominal_rho = build_cluster(config)
    result = _summarize_run(config, cluster, nominal_rho, started)
    assert cluster.telemetry is not None
    return result, cluster.telemetry.report()


def _hardening_counters(cluster) -> dict[str, float]:
    """Reliability + overload counters for chaos-free runs (empty when
    neither subsystem is installed)."""
    counters: dict[str, float] = {}
    if cluster.reliability is not None:
        counters.update(cluster.reliability.counters())
    if cluster.overload is not None:
        counters.update(cluster.overload_counters())
    if cluster.dispatchers is not None:
        counters.update(cluster.dispatchers.counters())
    if cluster.autoscaler is not None:
        counters.update(cluster.autoscaler.counters())
    return counters


def _summarize_run(
    config: SimulationConfig, cluster, nominal_rho: float, started: float
) -> SimulationResult:
    """Run a built cluster to completion and fold it into a result."""
    metrics: ClusterMetrics = cluster.run()
    summary = metrics.summary(config.warmup_fraction)
    counters = {
        name: getattr(cluster.policy, name)
        for name in _POLICY_COUNTER_ATTRS
        if hasattr(cluster.policy, name)
    }
    return SimulationResult(
        config=config,
        mean_response_time=summary["mean_response_time"],
        p50_response_time=summary["p50_response_time"],
        p90_response_time=summary["p90_response_time"],
        p99_response_time=summary["p99_response_time"],
        mean_poll_time=summary["mean_poll_time"],
        n_measured=summary["n_measured"],
        n_failed=summary["n_failed"],
        nominal_rho=nominal_rho,
        wall_seconds=time.perf_counter() - started,
        events_executed=cluster.sim.events_executed,
        message_counts={
            kind.value: count for kind, count in cluster.network.message_counts.items()
        },
        policy_counters=counters,
        stolen_cpu=cluster.total_stolen_cpu(),
        server_counts=tuple(
            int(v) for v in metrics.server_counts(config.n_servers, config.warmup_fraction)
        ),
        p95_response_time=summary["p95_response_time"],
        chaos_counters=(
            resilience_counters(cluster.chaos, metrics)
            if cluster.chaos is not None
            # Reliability/overload runs without a chaos injector still
            # surface their counters through the same channel; plain
            # runs keep the historical empty dict (bit-identical
            # archives).
            else _hardening_counters(cluster)
        ),
        telemetry_summary=(
            cluster.telemetry.summary() if cluster.telemetry is not None else {}
        ),
    )


def auto_chunksize(n_configs: int, max_workers: Optional[int] = None) -> int:
    """Pool chunksize balancing IPC overhead against load imbalance.

    ``len(configs) // (4 * workers)`` gives each worker ~4 chunks, so a
    straggler chunk costs at most ~25% of one worker's share while
    pickling overhead is amortized over the chunk.
    """
    workers = max_workers or os.cpu_count() or 1
    return max(1, n_configs // (4 * workers))


def prepare_configs(configs: Sequence[SimulationConfig]) -> list[SimulationConfig]:
    """Precompute calibrations so workers don't redo them.

    Prototype configs without a precomputed ``full_load_rho`` would
    redo the calibration bisection in every worker; resolve each one
    once here (memoized per workload in ``_CALIBRATION_CACHE``).
    """
    prepared: list[SimulationConfig] = []
    for config in configs:
        if config.model == "prototype" and config.full_load_rho is None:
            config = config.with_updates(full_load_rho=full_load_rho_for(config))
        prepared.append(config)
    return prepared


def parallel_sweep(
    configs: Sequence[SimulationConfig],
    max_workers: Optional[int] = None,
    parallel: bool = True,
    cache: Optional["ResultCache"] = None,
    engine: Optional[str] = None,
) -> list[SimulationResult]:
    """Run many configurations; results in input order.

    ``parallel=False`` (or a single config) runs serially — results are
    bit-identical either way.

    ``cache`` (a :class:`~repro.experiments.cache.ResultCache`) skips
    configs whose results are already on disk and writes back every
    fresh result; cached and fresh results are field-for-field
    identical, so enabling the cache never changes a sweep's output.

    ``engine`` overrides every config's execution engine for this sweep
    (``"heap"``/``"calendar"``/``"fast"``); ``None`` leaves configs
    as-is.
    """
    configs = list(configs)
    if engine is not None:
        configs = [
            c if c.engine == engine else c.with_updates(engine=engine)
            for c in configs
        ]
    if not configs:
        return []
    # Canonicalize before the cache lookup so the cache key, the config
    # the worker runs, and the config stored inside the result are all
    # the same object-value (a prototype config with full_load_rho=None
    # would otherwise store under its resolved form and never hit).
    configs = prepare_configs(configs)

    slots: list[Optional[SimulationResult]] = [None] * len(configs)
    todo_indices = list(range(len(configs)))
    if cache is not None:
        todo_indices = []
        for i, config in enumerate(configs):
            hit = cache.get(config)
            if hit is not None:
                slots[i] = hit
            else:
                todo_indices.append(i)

    todo = [configs[i] for i in todo_indices]
    if todo:
        if not parallel or len(todo) == 1:
            fresh = [run_simulation(config) for config in todo]
        else:
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                fresh = list(
                    pool.map(
                        run_simulation,
                        todo,
                        chunksize=auto_chunksize(len(todo), max_workers),
                    )
                )
        for i, result in zip(todo_indices, fresh):
            slots[i] = result
            if cache is not None:
                cache.put(result)
    return slots  # type: ignore[return-value]  # every slot is filled


def normalized_to_baseline(
    results: Sequence[SimulationResult], baseline: SimulationResult
) -> list[float]:
    """Mean response times normalized to a baseline run (Figure 3 style)."""
    base = baseline.mean_response_time
    if not math.isfinite(base) or base <= 0:
        raise ValueError("baseline has no valid mean response time")
    return [result.mean_response_time / base for result in results]
