"""Build and run configured experiments, serially or in parallel.

Parallelism model (per the hpc-parallel guides): each configuration is
an independent, CPU-bound, pure-Python simulation, so sweeps fan out
over a ``ProcessPoolExecutor`` (threads would serialize on the GIL).
Determinism is preserved because every config carries its own seed and
all randomness flows through named substreams — results are identical
whether a sweep runs serially, in parallel, or reordered.
"""

from __future__ import annotations

import math
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np

from repro.cluster.system import ClusterMetrics, ServiceCluster
from repro.core.registry import make_policy
from repro.experiments.config import SimulationConfig
from repro.prototype.calibration import calibrate_full_load
from repro.prototype.overhead import PrototypeOverheadModel
from repro.sim.rng import RngHub
from repro.workload.workloads import make_workload

__all__ = ["SimulationResult", "build_cluster", "run_simulation", "parallel_sweep"]

#: process-local cache of full-load calibrations keyed by workload identity
_CALIBRATION_CACHE: dict[tuple, float] = {}

#: fixed seed for calibration probes — full load is a property of the
#: workload + overhead model, not of any particular experiment run
_CALIBRATION_SEED = 424242

#: counters exported by policies into SimulationResult.policy_counters
_POLICY_COUNTER_ATTRS = (
    "polls_sent",
    "replies_received",
    "replies_discarded",
    "timeouts_fired",
    "broadcasts_sent",
    "queries_served",
    "refreshes",
)


@dataclass(frozen=True)
class SimulationResult:
    """Outcome of one configured run (times in seconds)."""

    config: SimulationConfig
    mean_response_time: float
    p50_response_time: float
    p90_response_time: float
    p99_response_time: float
    mean_poll_time: float
    n_measured: int
    n_failed: int
    nominal_rho: float
    wall_seconds: float
    events_executed: int
    message_counts: dict[str, int] = field(default_factory=dict)
    policy_counters: dict[str, int] = field(default_factory=dict)
    stolen_cpu: float = 0.0
    server_counts: tuple[int, ...] = ()

    @property
    def mean_response_time_ms(self) -> float:
        return self.mean_response_time * 1e3

    @property
    def mean_poll_time_ms(self) -> float:
        return self.mean_poll_time * 1e3


def _resolve_nominal_rho(config: SimulationConfig, overhead) -> float:
    """Requested load level -> nominal per-server utilization."""
    if config.model == "simulation":
        return config.load
    if config.full_load_rho is not None:
        return config.load * config.full_load_rho
    return config.load * full_load_rho_for(config, overhead)


def full_load_rho_for(config: SimulationConfig, overhead=None) -> float:
    """Calibrated 100%-load nominal utilization for a config's workload.

    Cached per (workload, workload_params, overhead) within the process.
    """
    overhead = overhead or _overhead_for(config)
    key = (
        config.workload,
        tuple(sorted(config.workload_params.items())),
        overhead,
    )
    cached = _CALIBRATION_CACHE.get(key)
    if cached is None:
        workload = make_workload(config.workload, **config.workload_params)
        calibration = calibrate_full_load(workload, overhead, seed=_CALIBRATION_SEED)
        cached = calibration.nominal_rho_at_full_load
        _CALIBRATION_CACHE[key] = cached
    return cached


def _overhead_for(config: SimulationConfig) -> Optional[PrototypeOverheadModel]:
    if config.model != "prototype":
        return None
    return PrototypeOverheadModel(**config.overhead_params)


def build_cluster(config: SimulationConfig) -> tuple[ServiceCluster, float]:
    """Construct the cluster + workload for a config.

    Returns ``(cluster, nominal_rho)``; the workload is already loaded.
    """
    overhead = _overhead_for(config)
    nominal_rho = _resolve_nominal_rho(config, overhead)
    workload = make_workload(config.workload, **config.workload_params)
    hub = RngHub(config.seed)
    gaps, services = workload.generate(hub.stream("workload"), config.n_requests)
    mean_service = float(services.mean())
    target_interval = mean_service / (config.n_servers * nominal_rho)
    gaps = gaps * (target_interval / float(gaps.mean()))

    policy = make_policy(config.policy, **config.policy_params)
    cluster = ServiceCluster(
        n_servers=config.n_servers,
        policy=policy,
        seed=config.seed,
        n_clients=config.n_clients,
        overhead=overhead,
        workers=config.workers,
        server_speeds=list(config.server_speeds) if config.server_speeds else None,
    )
    cluster.load_workload(gaps, services)
    return cluster, nominal_rho


def run_simulation(config: SimulationConfig) -> SimulationResult:
    """Run one configuration to completion and summarize."""
    started = time.perf_counter()
    cluster, nominal_rho = build_cluster(config)
    metrics: ClusterMetrics = cluster.run()
    summary = metrics.summary(config.warmup_fraction)
    counters = {
        name: getattr(cluster.policy, name)
        for name in _POLICY_COUNTER_ATTRS
        if hasattr(cluster.policy, name)
    }
    return SimulationResult(
        config=config,
        mean_response_time=summary["mean_response_time"],
        p50_response_time=summary["p50_response_time"],
        p90_response_time=summary["p90_response_time"],
        p99_response_time=summary["p99_response_time"],
        mean_poll_time=summary["mean_poll_time"],
        n_measured=summary["n_measured"],
        n_failed=summary["n_failed"],
        nominal_rho=nominal_rho,
        wall_seconds=time.perf_counter() - started,
        events_executed=cluster.sim.events_executed,
        message_counts={
            kind.value: count for kind, count in cluster.network.message_counts.items()
        },
        policy_counters=counters,
        stolen_cpu=cluster.total_stolen_cpu(),
        server_counts=tuple(
            int(v) for v in metrics.server_counts(config.n_servers, config.warmup_fraction)
        ),
    )


def parallel_sweep(
    configs: Sequence[SimulationConfig],
    max_workers: Optional[int] = None,
    parallel: bool = True,
) -> list[SimulationResult]:
    """Run many configurations; results in input order.

    ``parallel=False`` (or a single config) runs serially — results are
    bit-identical either way.
    """
    configs = list(configs)
    if not configs:
        return []
    if not parallel or len(configs) == 1:
        return [run_simulation(config) for config in configs]
    # Prototype configs without a precomputed full_load_rho would redo
    # the calibration bisection in every worker; do it once here.
    prepared: list[SimulationConfig] = []
    for config in configs:
        if config.model == "prototype" and config.full_load_rho is None:
            config = config.with_updates(full_load_rho=full_load_rho_for(config))
        prepared.append(config)
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(run_simulation, prepared, chunksize=1))


def normalized_to_baseline(
    results: Sequence[SimulationResult], baseline: SimulationResult
) -> list[float]:
    """Mean response times normalized to a baseline run (Figure 3 style)."""
    base = baseline.mean_response_time
    if not math.isfinite(base) or base <= 0:
        raise ValueError("baseline has no valid mean response time")
    return [result.mean_response_time / base for result in results]
