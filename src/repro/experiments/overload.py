"""Overload campaign: goodput under offered loads past saturation.

The ROADMAP's north star is "heavy traffic from millions of users", and
the paper's §1.1 stresses that internet arrivals are burstier than
Poisson — yet every other campaign in this repo stops below saturation.
This driver sweeps *offered load from 0.8× to 3× capacity* (bursty MMPP
arrivals by default) and compares the naive static-bound cluster
against the overload-control subsystem (:mod:`repro.cluster.overload`),
reporting the three quantities that matter past saturation:

- **goodput** — the fraction of offered requests that completed
  successfully (failures are requests that exhausted their retries or
  timed out terminally);
- **p95 of successes** — tail latency over the requests that did
  complete (an overloaded cluster that "succeeds" at 3 s per request
  is not useful for fine-grain services);
- **shed fraction** — how much arriving work the servers turned away
  at admission (static bound + adaptive shedding).

Everything flows through the standard machinery — configs are ordinary
:class:`SimulationConfig` objects (overload knobs in
``overload_params``), so campaigns hit the content-addressed result
cache, archive via :func:`~repro.experiments.io.save_results`, and
parallelize over a :class:`~repro.experiments.executor.SweepExecutor`.
Fixed seed in, bit-identical report out, under either event engine.
Both legs of every cell see the *same arrival schedule*: workloads
derive from seed substreams the overload layer never touches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.experiments.config import SimulationConfig
from repro.experiments.executor import SweepExecutor
from repro.experiments.io import save_results
from repro.experiments.results import ResultTable
from repro.experiments.runner import SimulationResult, parallel_sweep

__all__ = [
    "DEFAULT_OFFERED_LOADS",
    "DEFAULT_OVERLOAD_POLICIES",
    "STATIC_VS_ADAPTIVE",
    "OverloadReport",
    "overload_campaign",
    "overload_cluster_params",
    "overload_control_params",
]

#: offered-load grid: one point below saturation (where shedding is a
#: pure latency/goodput tradeoff — MMPP bursts pile queues even at
#: 0.8×, so the adaptive leg trades a few percent of goodput for a much
#: tighter tail) and three points past it (where it wins both axes)
DEFAULT_OFFERED_LOADS: tuple[float, ...] = (0.8, 1.2, 2.0, 3.0)

#: (label, policy, policy_params) triples the default campaign compares:
#: the no-information baseline and the paper's recommended polling
#: configuration (the interesting question is whether load information
#: still helps once every server is past saturation)
DEFAULT_OVERLOAD_POLICIES: tuple[tuple[str, str, dict], ...] = (
    ("random", "random", {}),
    ("polling-3", "polling", {"poll_size": 3, "discard_slow": True}),
)


def overload_control_params() -> dict[str, Any]:
    """The canonical :class:`~repro.cluster.overload.OverloadPolicy`
    knobs for static-vs-adaptive comparisons.

    Tuned against the default MMPP workload (50 ms mean service): the
    sojourn target keeps per-server queues near two requests, so an
    admitted request finishes well inside the 300 ms attempt timeout —
    the static-bound cluster instead buffers up to ``server_max_queue``
    (3.2 s of work), fails the deep entries at their deadline, and then
    *serves them anyway*, which is exactly the wasted capacity the
    adaptive controller avoids. Shed jitter admits 5% of would-be-shed
    probes so clients observe recovery early; withdrawal needs half a
    second of sustained shedding so MMPP bursts alone don't trigger it.
    """
    return {
        "sojourn_target": 0.1,
        "interval": 0.05,
        "ewma_alpha": 0.2,
        "shed_jitter": 0.05,
        "withdraw_after": 0.5,
    }


#: the two-mode axis every cell runs: the naive static-bound cluster
#: and the adaptive overload-control cluster, same arrival schedules
STATIC_VS_ADAPTIVE: tuple[tuple[str, dict], ...] = (
    ("static", {}),
    ("adaptive", overload_control_params()),
)


def overload_cluster_params(
    request_timeout: float = 0.3,
    max_retries: int = 3,
    server_max_queue: int = 64,
    refresh: float = 0.2,
    ttl: float = 0.6,
) -> dict[str, Any]:
    """Cluster knobs every overload run needs: the static admission
    bound both modes share, client-side timeout/retry, and the
    availability subsystem (so load-aware withdrawal has a channel to
    withdraw from)."""
    return {
        "availability": True,
        "availability_refresh": float(refresh),
        "availability_ttl": float(ttl),
        "request_timeout": float(request_timeout),
        "max_retries": int(max_retries),
        "server_max_queue": int(server_max_queue),
    }


@dataclass
class OverloadReport:
    """The campaign's output: one row per (mode, policy, load) cell."""

    table: ResultTable
    results: list[SimulationResult] = field(default_factory=list)

    def mode_comparison(self) -> list[str]:
        """Per-cell deltas of every non-static mode against ``static``."""
        by_mode: dict[str, dict[tuple, dict]] = {}
        for row in self.table.rows:
            mode = row.get("mode", "static")
            by_mode.setdefault(mode, {})[(row["policy"], row["load"])] = row
        static = by_mode.get("static")
        if static is None or len(by_mode) < 2:
            return []
        lines = []
        for mode, cells in by_mode.items():
            if mode == "static":
                continue
            for key, row in cells.items():
                base = static.get(key)
                if base is None:
                    continue
                policy, load = key
                lines.append(
                    f"{mode} vs static | {policy} load={load:g}x: "
                    f"goodput {base['goodput_pct']:.1f}% -> "
                    f"{row['goodput_pct']:.1f}%, "
                    f"p95 {base['p95_ms']:.0f} -> {row['p95_ms']:.0f} ms, "
                    f"shed {base['shed_pct']:.1f}% -> {row['shed_pct']:.1f}%"
                )
        return lines

    def render(self) -> str:
        out = f"== Overload campaign: goodput past saturation ==\n{self.table.render()}"
        comparison = self.mode_comparison()
        if comparison:
            out += "\n\n== Overload control (identical arrival schedules) ==\n"
            out += "\n".join(comparison)
        return out


def overload_campaign(
    policies: Sequence[tuple[str, str, dict]] = DEFAULT_OVERLOAD_POLICIES,
    offered_loads: Sequence[float] = DEFAULT_OFFERED_LOADS,
    workload: str = "mmpp_exp",
    n_servers: int = 16,
    n_requests: int = 4_000,
    seed: int = 0,
    cluster_params: Optional[dict[str, Any]] = None,
    overload_modes: Sequence[tuple[str, dict]] = STATIC_VS_ADAPTIVE,
    parallel: bool = True,
    max_workers: Optional[int] = None,
    cache=None,
    engine: Optional[str] = None,
    archive: Optional[str] = None,
) -> OverloadReport:
    """Run the mode × policy × offered-load grid, build the report.

    Every config carries a zero-fault chaos spec (``{"loss": 0.0}`` —
    no random draws, no events) so the full resilience-counter channel
    is populated for the static legs too: rejections, timeouts, and
    retries are what this campaign is *about*. ``archive`` (a path)
    additionally saves every result in the standard archive format.
    """
    params = (
        cluster_params if cluster_params is not None else overload_cluster_params()
    )
    modes = list(overload_modes)
    configs: list[SimulationConfig] = []
    keys: list[tuple[str, str, float]] = []
    for mode_label, overload_params in modes:
        for label, policy, policy_params in policies:
            for load in offered_loads:
                configs.append(
                    SimulationConfig(
                        policy=policy,
                        policy_params=dict(policy_params),
                        workload=workload,
                        load=float(load),
                        n_servers=n_servers,
                        n_requests=n_requests,
                        seed=seed,
                        cluster_params=dict(params),
                        chaos_params={"loss": 0.0},
                        overload_params=dict(overload_params),
                        label=f"overload {label} L={load:g}x {mode_label}",
                    )
                )
                keys.append((mode_label, label, float(load)))

    if parallel:
        with SweepExecutor(max_workers=max_workers, cache=cache, engine=engine) as pool:
            results = pool.sweep(configs)
    else:
        results = parallel_sweep(configs, parallel=False, cache=cache, engine=engine)

    by_key = dict(zip(keys, results))
    table = ResultTable(
        [
            "mode",
            "policy",
            "load",
            "goodput_pct",
            "p95_ms",
            "shed_pct",
            "rejected",
            "shed",
            "nacks",
            "timeouts",
            "retries",
            "failed",
            "withdrawals",
        ]
    )
    for mode_label, _ in modes:
        for label, _, _ in policies:
            for load in offered_loads:
                result = by_key[(mode_label, label, float(load))]
                counters = result.chaos_counters
                offered = result.config.n_requests
                rejected = int(counters.get("requests_rejected", 0))
                attempts = max(1, result.message_counts.get("request", offered))
                table.add(
                    mode=mode_label,
                    policy=label,
                    load=float(load),
                    goodput_pct=100.0 * (offered - result.n_failed) / offered,
                    p95_ms=result.p95_response_time * 1e3,
                    # rejected / delivery attempts: the fraction of
                    # arriving work (retries included) turned away
                    shed_pct=100.0 * rejected / attempts,
                    rejected=rejected,
                    shed=int(counters.get("requests_shed", 0)),
                    nacks=int(counters.get("rejects_sent", 0)),
                    timeouts=int(counters.get("request_timeouts_fired", 0)),
                    retries=int(counters.get("total_retries", 0)),
                    failed=result.n_failed,
                    withdrawals=int(counters.get("overload_withdrawals", 0)),
                )
    if archive is not None:
        save_results(results, archive)
    return OverloadReport(table=table, results=list(results))
