"""Autoscale campaign: goodput vs provisioning cost past saturation.

The overload campaign (:mod:`repro.experiments.overload`) showed what
admission control buys when the pool size is *fixed*. This campaign
asks the complementary capacity question: how much of a statically
provisioned worst-case pool does a closed-loop autoscaler
(:mod:`repro.cluster.autoscaler`) actually need — and what does the
answer cost in goodput? Every cell routes through the fault-tolerant
dispatcher tier (:mod:`repro.cluster.dispatcher`) with failover
assignment, and the fault axis injects *dispatcher* crash storms so the
comparison holds up under control-plane failures, not just happy-path
load.

Two modes run the same 0.8×–3× MMPP offered-load grid with identical
arrival schedules, both on top of the overload subsystem's adaptive
admission (past saturation an unprotected pool melts into retry
ping-pong either way — the capacity question is only meaningful on the
hardened baseline):

- **static** — the dispatcher tier in front of the full worst-case
  pool (every server published for the whole run);
- **autoscaled** — the same tier plus the autoscaler, which starts at
  the minimum pool and adds/removes servers from telemetry signals
  (shed fraction, p95 sojourn, demand), actuating purely through
  soft-state publish/withdrawal.

The report's headline metric is **goodput per provisioned server** —
completed requests divided by the time-mean number of *active* servers
(the full pool size for the static leg). The autoscaled leg wins the
efficiency axis whenever it tracks demand with a smaller mean pool
without giving up the goodput the static leg achieves.

Like every campaign, this is a thin skin over the scenario engine:
configs are ordinary :class:`SimulationConfig` objects (tier knobs in
``dispatcher_params``, scaling knobs in ``autoscaler_params``), so
cells hit the content-addressed result cache, archive via
:func:`~repro.experiments.io.save_results`, and run bit-identically
under either exact event engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.experiments.io import save_results
from repro.experiments.overload import overload_control_params
from repro.experiments.results import ResultTable
from repro.experiments.runner import SimulationResult
from repro.experiments.scenario import (
    FaultAxis,
    ModeAxis,
    PolicyAxis,
    ScenarioSpec,
    WorkloadAxis,
    run_cells,
)

__all__ = [
    "DEFAULT_AUTOSCALE_LOADS",
    "DEFAULT_AUTOSCALE_POLICIES",
    "DISPATCHER_FAULTS",
    "STATIC_VS_AUTOSCALED",
    "AutoscaleReport",
    "autoscale_campaign",
    "autoscale_cluster_params",
    "autoscale_dispatcher_params",
    "autoscale_scaling_params",
    "autoscale_scenario_spec",
    "autoscale_workload_params",
]

#: offered-load grid shared with the overload campaign: one point below
#: saturation (where the autoscaler should shrink the pool) and three
#: past it (where it must grow back to the full pool under pressure)
DEFAULT_AUTOSCALE_LOADS: tuple[float, ...] = (0.8, 1.2, 2.0, 3.0)

#: (label, policy, policy_params) triples: the no-information baseline,
#: the paper's recommended polling configuration, and the two modern
#: low-overhead baselines (JIQ and client-local least-connections) —
#: the latter two exercise the per-dispatcher selector state the tier
#: introduces
DEFAULT_AUTOSCALE_POLICIES: tuple[tuple[str, str, dict], ...] = (
    ("random", "random", {}),
    ("polling-3", "polling", {"poll_size": 3, "discard_slow": True}),
    ("jiq", "jiq", {}),
    ("least-conn", "least_connections", {}),
)


def autoscale_dispatcher_params() -> dict[str, Any]:
    """Canonical dispatcher-tier knobs for the campaign: a 3-dispatcher
    tier with failover assignment, so a crashed dispatcher costs one
    attempt timeout per affected client rather than the whole run."""
    return {
        "count": 3,
        "assignment": "failover",
        "suspect_cooldown": 0.5,
    }


def autoscale_scaling_params(n_servers: int = 16) -> dict[str, Any]:
    """Canonical :class:`~repro.cluster.autoscaler.AutoscalerPolicy`
    knobs: start at a quarter of the worst-case pool, grow four servers
    at a time when more than 2% of offered work fails or sheds (or the
    window p95 blows past the attempt timeout's headroom), shrink two
    at a time through clean low-demand windows.
    """
    return {
        "interval": 0.1,
        "min_servers": max(1, n_servers // 4),
        "max_servers": n_servers,
        "shed_high": 0.02,
        # The latency trigger matters more than the shed trigger here:
        # an under-provisioned pool *melts* (queues past the 300 ms
        # attempt timeout, requests retried rather than failed) long
        # before terminal failures show up in the window.
        "p95_high": 0.25,
        # Parking is self-limiting (demand is measured against the
        # *current* active pool), so a generous utilization ceiling and
        # a short cooldown let the controller actually reach the lull
        # floor inside an MMPP calm phase instead of trailing it.
        "util_low": 0.65,
        "step_up": 4,
        "step_down": 2,
        "cooldown": 0.1,
    }


def autoscale_workload_params() -> dict[str, Any]:
    """MMPP shape for the campaign: phases long enough for the 100 ms
    control loop to track (the stock ``sojourn=1.0`` rescales to ~30 ms
    phases at campaign size — pure noise to the controller) and lulls
    deep enough that parking servers is actually the right call."""
    return {"sojourn": 40.0, "burst_ratio": 6.0}


#: the two-mode axis: the statically provisioned worst-case pool and
#: the closed-loop autoscaled pool, both behind the same dispatcher
#: tier and fed the same arrival schedules
STATIC_VS_AUTOSCALED: tuple[tuple[str, dict], ...] = (
    ("static", {}),
    ("autoscaled", autoscale_scaling_params()),
)

#: dispatcher-failure intensity axis: D=0 is the zero-fault spec (the
#: resilience-counter channel stays populated), D=1 crashes two
#: dispatchers (storm clamps so one always survives) for a quarter of
#: the run each
DISPATCHER_FAULTS: tuple[tuple[str, dict, float], ...] = (
    ("D=0", {"loss": 0.0}, 0.0),
    (
        "D=1",
        {
            "dispatcher_storms": 2,
            "dispatcher_storm_size": 1,
            "dispatcher_storm_frac": 0.25,
        },
        1.0,
    ),
)


def autoscale_cluster_params(
    request_timeout: float = 0.3,
    max_retries: int = 5,
    server_max_queue: int = 64,
    refresh: float = 0.2,
    ttl: float = 0.6,
) -> dict[str, Any]:
    """Cluster knobs every autoscale run needs: the availability
    subsystem (both the autoscaler and graceful scale-down actuate
    through it), client-side timeout/retry with headroom for
    dispatcher failover, and the static admission bound."""
    return {
        "availability": True,
        "availability_refresh": float(refresh),
        "availability_ttl": float(ttl),
        "request_timeout": float(request_timeout),
        "max_retries": int(max_retries),
        "server_max_queue": int(server_max_queue),
    }


@dataclass
class AutoscaleReport:
    """The campaign's output: one row per (mode, policy, load, fault)."""

    table: ResultTable
    results: list[SimulationResult] = field(default_factory=list)

    def mode_comparison(self) -> list[str]:
        """Per-cell deltas of every non-static mode against ``static``."""
        by_mode: dict[str, dict[tuple, dict]] = {}
        for row in self.table.rows:
            mode = row.get("mode", "static")
            key = (row["policy"], row["load"], row["fault"])
            by_mode.setdefault(mode, {})[key] = row
        static = by_mode.get("static")
        if static is None or len(by_mode) < 2:
            return []
        lines = []
        for mode, cells in by_mode.items():
            if mode == "static":
                continue
            for key, row in cells.items():
                base = static.get(key)
                if base is None:
                    continue
                policy, load, fault = key
                lines.append(
                    f"{mode} vs static | {policy} load={load:g}x {fault}: "
                    f"goodput {base['goodput_pct']:.1f}% -> "
                    f"{row['goodput_pct']:.1f}%, "
                    f"servers {base['mean_active']:.1f} -> "
                    f"{row['mean_active']:.1f}, "
                    f"goodput/server {base['goodput_per_server']:.1f} -> "
                    f"{row['goodput_per_server']:.1f}"
                )
        return lines

    def render(self) -> str:
        out = (
            "== Autoscale campaign: goodput vs provisioning cost ==\n"
            + self.table.render()
        )
        comparison = self.mode_comparison()
        if comparison:
            out += "\n\n== Autoscaling (identical arrival schedules) ==\n"
            out += "\n".join(comparison)
        return out


def autoscale_scenario_spec(
    policies: Sequence[tuple[str, str, dict]] = DEFAULT_AUTOSCALE_POLICIES,
    offered_loads: Sequence[float] = DEFAULT_AUTOSCALE_LOADS,
    workload: str = "mmpp_exp",
    workload_params: Optional[dict[str, Any]] = None,
    n_servers: int = 16,
    n_requests: int = 4_000,
    seed: int = 0,
    cluster_params: Optional[dict[str, Any]] = None,
    scaling_modes: Optional[Sequence[tuple[str, dict]]] = None,
    dispatcher_params: Optional[dict[str, Any]] = None,
    faults: Sequence[tuple[str, dict, float]] = DISPATCHER_FAULTS,
    quick: bool = False,
) -> ScenarioSpec:
    """The autoscale campaign's grid as a declarative scenario spec.

    Both modes carry the overload subsystem's adaptive admission
    (:func:`~repro.experiments.overload.overload_control_params`):
    past saturation an unprotected pool melts into retry ping-pong
    whether or not it autoscales, so the capacity comparison is only
    meaningful on top of the hardened baseline. ``quick`` trims the
    grid (two policies, two loads) for the <60s
    ``make autoscale-smoke`` path while keeping both modes and both
    dispatcher-fault intensities.
    """
    if scaling_modes is None:
        scaling_modes = (
            ("static", {}),
            ("autoscaled", autoscale_scaling_params(n_servers)),
        )
    tier = (
        dispatcher_params
        if dispatcher_params is not None
        else autoscale_dispatcher_params()
    )
    params = (
        cluster_params if cluster_params is not None else autoscale_cluster_params()
    )
    shape = (
        workload_params
        if workload_params is not None
        else (autoscale_workload_params() if workload == "mmpp_exp" else {})
    )
    admission = overload_control_params()
    policies = tuple(policies)
    offered_loads = tuple(float(v) for v in offered_loads)
    if quick:
        policies = policies[:2]
        offered_loads = (0.8, 2.0)
    return ScenarioSpec(
        name="autoscale",
        policies=tuple(
            PolicyAxis(label, policy, dict(p)) for label, policy, p in policies
        ),
        workloads=(WorkloadAxis(workload, workload, dict(shape)),),
        loads=offered_loads,
        modes=tuple(
            ModeAxis(
                mode_label,
                overload=dict(admission),
                dispatcher=dict(tier),
                autoscaler=dict(scaling),
            )
            for mode_label, scaling in scaling_modes
        ),
        faults=tuple(
            FaultAxis(label, dict(chaos), value=value)
            for label, chaos, value in faults
        ),
        n_servers=n_servers,
        n_requests=n_requests,
        seed=seed,
        cluster_params=dict(params),
        label_format="autoscale {policy} L={load:g}x {mode} {fault}",
    )


def autoscale_campaign(
    policies: Sequence[tuple[str, str, dict]] = DEFAULT_AUTOSCALE_POLICIES,
    offered_loads: Sequence[float] = DEFAULT_AUTOSCALE_LOADS,
    workload: str = "mmpp_exp",
    workload_params: Optional[dict[str, Any]] = None,
    n_servers: int = 16,
    n_requests: int = 4_000,
    seed: int = 0,
    cluster_params: Optional[dict[str, Any]] = None,
    scaling_modes: Optional[Sequence[tuple[str, dict]]] = None,
    dispatcher_params: Optional[dict[str, Any]] = None,
    faults: Sequence[tuple[str, dict, float]] = DISPATCHER_FAULTS,
    quick: bool = False,
    parallel: bool = True,
    max_workers: Optional[int] = None,
    cache=None,
    engine: Optional[str] = None,
    archive: Optional[str] = None,
    verify: bool = False,
) -> AutoscaleReport:
    """Run the mode × policy × load × dispatcher-fault grid and report.

    ``goodput_per_server`` divides completed requests by the time-mean
    active pool size — the static leg is charged its full pool, the
    autoscaled leg only what the controller actually kept published.
    ``archive`` (a path) additionally saves every result in the
    standard archive format.
    """
    spec = autoscale_scenario_spec(
        policies=policies,
        offered_loads=offered_loads,
        workload=workload,
        workload_params=workload_params,
        n_servers=n_servers,
        n_requests=n_requests,
        seed=seed,
        cluster_params=cluster_params,
        scaling_modes=scaling_modes,
        dispatcher_params=dispatcher_params,
        faults=faults,
        quick=quick,
    )
    cells = spec.expand()
    if verify:
        from repro.experiments.scenario import verify_cells

        cells = verify_cells(cells)
    results = run_cells(
        cells, parallel=parallel, max_workers=max_workers, cache=cache, engine=engine
    )
    table = ResultTable(
        [
            "mode",
            "policy",
            "load",
            "fault",
            "goodput_pct",
            "p95_ms",
            "mean_active",
            "goodput_per_server",
            "failed",
            "timeouts",
            "failovers",
            "ups",
            "downs",
        ]
    )
    for cell, result in zip(cells, results):
        counters = result.chaos_counters
        offered = result.config.n_requests
        completed = offered - result.n_failed
        mean_active = float(
            counters.get("autoscale_mean_active", result.config.n_servers)
        )
        table.add(
            mode=cell.mode,
            policy=cell.policy,
            load=cell.load,
            fault=cell.fault,
            goodput_pct=100.0 * completed / offered,
            p95_ms=result.p95_response_time * 1e3,
            mean_active=mean_active,
            goodput_per_server=completed / max(mean_active, 1e-12),
            failed=result.n_failed,
            timeouts=int(counters.get("request_timeouts_fired", 0)),
            failovers=int(counters.get("dispatcher_failovers", 0)),
            ups=int(counters.get("autoscale_ups", 0)),
            downs=int(counters.get("autoscale_downs", 0)),
        )
    if archive is not None:
        save_results(results, archive)
    return AutoscaleReport(table=table, results=list(results))
