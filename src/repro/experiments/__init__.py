"""Experiment harness: configs, runners, result tables, figure drivers.

The benches under ``benchmarks/`` are thin wrappers over
:mod:`~repro.experiments.figures`, which regenerates every table and
figure of the paper's evaluation:

- :func:`~repro.experiments.figures.table1_traces`
- :func:`~repro.experiments.figures.figure2_inaccuracy`
- :func:`~repro.experiments.figures.figure3_broadcast`
- :func:`~repro.experiments.figures.figure4_pollsize` (simulation model)
- :func:`~repro.experiments.figures.figure6_pollsize` (prototype model)
- :func:`~repro.experiments.figures.table2_discard`
- :func:`~repro.experiments.figures.poll_profile_section32`
- :func:`~repro.experiments.figures.message_scaling_section24`
"""

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import (
    SimulationResult,
    build_cluster,
    parallel_sweep,
    run_simulation,
    run_with_telemetry,
)
from repro.experiments.results import ResultTable
from repro.experiments.report import format_table, staleness_response_table
from repro.experiments.replication import (
    ReplicatedResult,
    compare_policies,
    replicate,
)
from repro.experiments.io import (
    load_attempts_jsonl,
    load_results,
    load_spans_jsonl,
    save_results,
    save_telemetry,
    validate_telemetry_dir,
)
from repro.experiments.cache import ResultCache, config_key, default_cache_dir
from repro.experiments.executor import SweepExecutor, SweepStats
from repro.experiments.parity import EngineParityReport, engine_parity, parity_suite
from repro.experiments.chaos import (
    NAIVE_VS_HARDENED,
    ResilienceReport,
    chaos_campaign,
    chaos_cluster_params,
    chaos_params_for,
    hardened_reliability_params,
)
from repro.experiments.overload import (
    STATIC_VS_ADAPTIVE,
    OverloadReport,
    overload_campaign,
    overload_cluster_params,
    overload_control_params,
)
from repro.experiments.scenario import (
    BUILTIN_SCENARIOS,
    FaultAxis,
    ModeAxis,
    PolicyAxis,
    ScaleAxis,
    ScenarioCell,
    ScenarioError,
    ScenarioReport,
    ScenarioSpec,
    WorkloadAxis,
    composed_spec,
    load_spec,
    spec_from_dict,
)
from repro.experiments import figures, regression

__all__ = [
    "BUILTIN_SCENARIOS",
    "EngineParityReport",
    "FaultAxis",
    "ModeAxis",
    "NAIVE_VS_HARDENED",
    "OverloadReport",
    "PolicyAxis",
    "ReplicatedResult",
    "ResilienceReport",
    "STATIC_VS_ADAPTIVE",
    "ResultCache",
    "ResultTable",
    "ScaleAxis",
    "ScenarioCell",
    "ScenarioError",
    "ScenarioReport",
    "ScenarioSpec",
    "SimulationConfig",
    "SimulationResult",
    "SweepExecutor",
    "SweepStats",
    "WorkloadAxis",
    "build_cluster",
    "chaos_campaign",
    "chaos_cluster_params",
    "chaos_params_for",
    "compare_policies",
    "composed_spec",
    "config_key",
    "default_cache_dir",
    "engine_parity",
    "figures",
    "format_table",
    "hardened_reliability_params",
    "load_spec",
    "load_attempts_jsonl",
    "load_results",
    "load_spans_jsonl",
    "overload_campaign",
    "overload_cluster_params",
    "overload_control_params",
    "parallel_sweep",
    "parity_suite",
    "regression",
    "replicate",
    "run_simulation",
    "run_with_telemetry",
    "save_results",
    "save_telemetry",
    "spec_from_dict",
    "staleness_response_table",
    "validate_telemetry_dir",
]
