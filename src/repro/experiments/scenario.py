"""Declarative scenario composition: axes x modes x grid -> cells -> report.

Chaos (PR 2), reliability (PR 4), overload (PR 5), and telemetry each
grew their own campaign module with the same shape — a hand-rolled
nest of loops over (mode, policy, level) building ``SimulationConfig``
objects, a ``SweepExecutor``/``parallel_sweep`` branch, and a bespoke
report. This module factors that shape out once:

- a :class:`ScenarioSpec` declares the axes — workloads, policies,
  loads, subsystem *modes* (reliability/overload/telemetry knob sets),
  *faults* (chaos knob sets), and *scales* (cluster sizes) — plus the
  shared scalars (seed, engine, cluster params, a label format);
- :meth:`ScenarioSpec.expand` validates the composition and produces
  the full cross-product as :class:`ScenarioCell` objects, each
  carrying an ordinary :class:`SimulationConfig` — so every cell flows
  through the existing executor, content-addressed result cache, and
  archive machinery unchanged;
- :meth:`ScenarioSpec.run` executes the cells and renders a unified
  :class:`ScenarioReport`.

The legacy campaigns (:mod:`repro.experiments.chaos`,
:mod:`repro.experiments.overload`) are now thin specs on top of this
engine; the golden-equivalence suite
(``tests/experiments/test_scenario_golden.py``) proves the re-plumbing
is invisible — bit-identical results and reports at fixed seeds on
both exact engines.

Validation is eager and *names the offending axis*: unknown policy or
workload names, bad subsystem knobs, colliding cell labels, and knob
combinations the chosen engine cannot execute (e.g. ``engine="fast"``
with chaos or telemetry) all raise :class:`ScenarioError` before any
simulation starts. Specs are declarative data: :func:`spec_from_dict`
builds one from a plain dict, :func:`load_spec` reads JSON or an
indentation-based YAML-lite subset (``repro scenario --spec``), and
:func:`composed_spec` is the built-in "paper + chaos + overload +
hardened, at three scales, one command" grid — including a
trace-replay workload (:mod:`repro.workload.replay`), the first axis
the bespoke campaigns could not express.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional, Sequence

from repro.experiments.config import (
    _AUTOSCALER_PARAM_KEYS,
    _CHAOS_PARAM_KEYS,
    _CLUSTER_PARAM_KEYS,
    _DISPATCHER_PARAM_KEYS,
    _OVERLOAD_PARAM_KEYS,
    _RELIABILITY_PARAM_KEYS,
    _TELEMETRY_PARAM_KEYS,
    SimulationConfig,
)
from repro.experiments.executor import SweepExecutor
from repro.experiments.io import save_results
from repro.experiments.results import ResultTable
from repro.experiments.runner import SimulationResult, parallel_sweep

__all__ = [
    "BUILTIN_SCENARIOS",
    "FaultAxis",
    "ModeAxis",
    "PolicyAxis",
    "ScaleAxis",
    "ScenarioCell",
    "ScenarioError",
    "ScenarioReport",
    "ScenarioSpec",
    "SpeedAxis",
    "WorkloadAxis",
    "composed_spec",
    "load_spec",
    "run_cells",
    "spec_from_dict",
]

_ENGINES = ("heap", "calendar", "fast")

#: SimulationConfig fields a spec may set via ``config_overrides``
#: (everything not already owned by an axis or a spec scalar; note
#: ``server_speeds`` here conflicts with a non-degenerate ``speeds``
#: axis — the axis owns heterogeneity when present)
_OVERRIDE_FIELDS = frozenset(
    {
        "n_clients",
        "model",
        "warmup_fraction",
        "workers",
        "server_speeds",
        "overhead_params",
        "full_load_rho",
    }
)


class ScenarioError(ValueError):
    """A spec failed validation; ``axis`` names the offending axis."""

    def __init__(self, axis: str, message: str, entry: Optional[str] = None):
        self.axis = axis
        self.entry = entry
        where = f"axis {axis!r}"
        if entry is not None:
            where += f", entry {entry!r}"
        super().__init__(f"invalid scenario: {where}: {message}")


# ----------------------------------------------------------------------
# axes
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class PolicyAxis:
    """One policy leg: display label, registry name, constructor params."""

    label: str
    policy: str
    params: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class WorkloadAxis:
    """One workload leg: display label, registry name, builder params."""

    label: str
    workload: str
    params: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class ModeAxis:
    """One subsystem mode: reliability/overload/telemetry/dispatcher/
    autoscaler knob sets.

    An all-empty mode is the naive baseline — per the repo invariant,
    it runs bit-identical to a pre-subsystem build.
    """

    label: str
    reliability: dict[str, Any] = field(default_factory=dict)
    overload: dict[str, Any] = field(default_factory=dict)
    telemetry: dict[str, Any] = field(default_factory=dict)
    dispatcher: dict[str, Any] = field(default_factory=dict)
    autoscaler: dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class FaultAxis:
    """One chaos level: a :class:`~repro.cluster.failures.ChaosSpec`
    knob set, plus an optional numeric ``value`` (e.g. the intensity
    scalar it was derived from) for reports."""

    label: str
    chaos: dict[str, Any] = field(default_factory=dict)
    value: Optional[float] = None


@dataclass(frozen=True)
class ScaleAxis:
    """One cluster scale; ``None`` fields inherit the spec defaults."""

    label: str
    n_servers: Optional[int] = None
    n_requests: Optional[int] = None


@dataclass(frozen=True)
class SpeedAxis:
    """One server-speed profile (heterogeneity ablation).

    ``speeds=None`` is the homogeneous default (every server at speed
    1.0 — the exact legacy configuration); otherwise one positive
    factor per server, length-checked against every scale in the spec.
    """

    label: str
    speeds: Optional[tuple[float, ...]] = None

    def __post_init__(self) -> None:
        if self.speeds is not None:
            object.__setattr__(
                self, "speeds", tuple(float(v) for v in self.speeds)
            )


@dataclass(frozen=True)
class ScenarioCell:
    """One expanded grid point: axis labels + the runnable config."""

    mode: str
    workload: str
    policy: str
    load: float
    fault: str
    scale: str
    fault_value: Optional[float]
    config: SimulationConfig
    speed: str = ""


def _coerce(axis: str, entries: Sequence, factory: Callable, kind: type) -> tuple:
    """Accept axis entries as dataclasses, tuples, or dicts."""
    out = []
    for entry in entries:
        if isinstance(entry, kind):
            out.append(entry)
        elif isinstance(entry, dict):
            try:
                out.append(factory(**entry))
            except TypeError as err:
                raise ScenarioError(axis, str(err)) from None
        elif isinstance(entry, (tuple, list)):
            try:
                out.append(factory(*entry))
            except TypeError as err:
                raise ScenarioError(axis, str(err)) from None
        else:
            raise ScenarioError(
                axis, f"cannot build {kind.__name__} from {entry!r}"
            )
    return tuple(out)


def _check_keys(axis: str, entry: str, kind: str, params: dict, allowed) -> None:
    unknown = set(params) - set(allowed)
    if unknown:
        raise ScenarioError(
            axis,
            f"unknown {kind} key(s): {sorted(unknown)} "
            f"(allowed: {sorted(allowed)})",
            entry=entry,
        )


def _unique_labels(axis: str, labels: Sequence[str]) -> None:
    seen: set[str] = set()
    for label in labels:
        if label in seen:
            raise ScenarioError(axis, f"duplicate label {label!r}")
        seen.add(label)


# ----------------------------------------------------------------------
# the spec
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class ScenarioSpec:
    """A declarative experiment grid.

    Cells expand in fixed nesting order — mode, workload, policy, load,
    fault, scale, speed (outer to inner) — so reports group naturally
    and the legacy campaigns reproduce their historical result ordering
    (the degenerate default ``speeds`` axis adds no loop iterations and
    leaves every legacy label and config byte-identical).

    ``label_format`` builds each cell's config label (and hence its
    archive/cache identity) from the placeholders ``{scenario}``,
    ``{workload}``, ``{policy}``, ``{load}``, ``{mode}``, ``{fault}``,
    ``{scale}``, ``{speed}``, ``{n_servers}``, ``{n_requests}``, and
    ``{seed}``;
    surplus whitespace from empty labels is collapsed. Two cells that
    expand to identical configs (same label *and* same knobs) are
    rejected — every cell must be separately cache-addressable.
    """

    name: str = "scenario"
    policies: tuple[PolicyAxis, ...] = (PolicyAxis("random", "random"),)
    workloads: tuple[WorkloadAxis, ...] = (WorkloadAxis("poisson_exp", "poisson_exp"),)
    loads: tuple[float, ...] = (0.9,)
    modes: tuple[ModeAxis, ...] = (ModeAxis(""),)
    faults: tuple[FaultAxis, ...] = (FaultAxis(""),)
    scales: tuple[ScaleAxis, ...] = (ScaleAxis(""),)
    speeds: tuple[SpeedAxis, ...] = (SpeedAxis(""),)
    n_servers: int = 16
    n_requests: int = 4_000
    seed: int = 0
    engine: str = "heap"
    cluster_params: dict[str, Any] = field(default_factory=dict)
    config_overrides: dict[str, Any] = field(default_factory=dict)
    label_format: str = "{scenario} {workload} {policy} L={load:g} {mode} {fault} {scale}"

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "policies", _coerce("policies", self.policies, PolicyAxis, PolicyAxis)
        )
        object.__setattr__(
            self,
            "workloads",
            _coerce("workloads", self.workloads, WorkloadAxis, WorkloadAxis),
        )
        object.__setattr__(self, "modes", _coerce("modes", self.modes, ModeAxis, ModeAxis))
        object.__setattr__(
            self, "faults", _coerce("faults", self.faults, FaultAxis, FaultAxis)
        )
        object.__setattr__(
            self, "scales", _coerce("scales", self.scales, ScaleAxis, ScaleAxis)
        )
        object.__setattr__(
            self, "speeds", _coerce("speeds", self.speeds, SpeedAxis, SpeedAxis)
        )
        object.__setattr__(self, "loads", tuple(float(v) for v in self.loads))

    # ------------------------------------------------------------------
    # validation
    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`ScenarioError` (naming the axis) on any problem."""
        from repro.core.registry import available_policies, make_policy
        from repro.workload.workloads import available_workloads, make_workload

        if not self.name or not isinstance(self.name, str):
            raise ScenarioError("name", f"must be a non-empty string, got {self.name!r}")
        if self.engine not in _ENGINES:
            raise ScenarioError(
                "engine", f"must be one of {_ENGINES}, got {self.engine!r}"
            )
        for axis, entries in (
            ("policies", self.policies),
            ("workloads", self.workloads),
            ("loads", self.loads),
            ("modes", self.modes),
            ("faults", self.faults),
            ("scales", self.scales),
            ("speeds", self.speeds),
        ):
            if not entries:
                raise ScenarioError(axis, "must not be empty")
        _unique_labels("policies", [p.label for p in self.policies])
        _unique_labels("workloads", [w.label for w in self.workloads])
        _unique_labels("modes", [m.label for m in self.modes])
        _unique_labels("faults", [f.label for f in self.faults])
        _unique_labels("scales", [s.label for s in self.scales])
        _unique_labels("speeds", [s.label for s in self.speeds])
        if len(set(self.loads)) != len(self.loads):
            raise ScenarioError("loads", f"duplicate load in {list(self.loads)}")
        for load in self.loads:
            if not load > 0:
                raise ScenarioError("loads", f"load must be > 0, got {load}")

        known_policies = set(available_policies())
        for p in self.policies:
            if p.policy not in known_policies:
                raise ScenarioError(
                    "policies",
                    f"unknown policy {p.policy!r} "
                    f"(available: {sorted(known_policies)})",
                    entry=p.label,
                )
            try:
                make_policy(p.policy, **p.params)
            except TypeError as err:
                raise ScenarioError(
                    "policies", f"bad params for {p.policy!r}: {err}", entry=p.label
                ) from None
        known_workloads = set(available_workloads())
        for w in self.workloads:
            if w.workload not in known_workloads:
                raise ScenarioError(
                    "workloads",
                    f"unknown workload {w.workload!r} "
                    f"(available: {sorted(known_workloads)})",
                    entry=w.label,
                )
            try:
                make_workload(w.workload, **w.params)
            except TypeError as err:
                raise ScenarioError(
                    "workloads", f"bad params for {w.workload!r}: {err}", entry=w.label
                ) from None
            except (OSError, ValueError) as err:
                raise ScenarioError(
                    "workloads", f"cannot build {w.workload!r}: {err}", entry=w.label
                ) from None

        for m in self.modes:
            _check_keys("modes", m.label, "reliability", m.reliability, _RELIABILITY_PARAM_KEYS)
            _check_keys("modes", m.label, "overload", m.overload, _OVERLOAD_PARAM_KEYS)
            _check_keys("modes", m.label, "telemetry", m.telemetry, _TELEMETRY_PARAM_KEYS)
            _check_keys("modes", m.label, "dispatcher", m.dispatcher, _DISPATCHER_PARAM_KEYS)
            _check_keys("modes", m.label, "autoscaler", m.autoscaler, _AUTOSCALER_PARAM_KEYS)
        for f in self.faults:
            _check_keys("faults", f.label, "chaos", f.chaos, _CHAOS_PARAM_KEYS)
        _check_keys("cluster_params", "", "cluster", self.cluster_params, _CLUSTER_PARAM_KEYS)
        _check_keys(
            "config_overrides", "", "override", self.config_overrides, _OVERRIDE_FIELDS
        )

        for s in self.scales:
            n_servers = s.n_servers if s.n_servers is not None else self.n_servers
            n_requests = s.n_requests if s.n_requests is not None else self.n_requests
            if n_servers < 1:
                raise ScenarioError(
                    "scales", f"n_servers must be >= 1, got {n_servers}", entry=s.label
                )
            if n_requests < 10:
                raise ScenarioError(
                    "scales", f"n_requests must be >= 10, got {n_requests}", entry=s.label
                )

        heterogeneous = [sp for sp in self.speeds if sp.speeds is not None]
        if heterogeneous and "server_speeds" in self.config_overrides:
            raise ScenarioError(
                "speeds",
                "a heterogeneous speeds axis conflicts with "
                "config_overrides.server_speeds; use one or the other",
            )
        for sp in heterogeneous:
            if any(v <= 0 for v in sp.speeds):
                raise ScenarioError(
                    "speeds",
                    f"speed factors must be > 0, got {list(sp.speeds)}",
                    entry=sp.label,
                )
            for s in self.scales:
                n_servers = s.n_servers if s.n_servers is not None else self.n_servers
                if len(sp.speeds) != n_servers:
                    raise ScenarioError(
                        "speeds",
                        f"{len(sp.speeds)} speed factors but scale "
                        f"{s.label or '<default>'} has {n_servers} servers "
                        "(one factor per server)",
                        entry=sp.label,
                    )

        if self.engine == "fast":
            self._validate_fast()

    def _validate_fast(self) -> None:
        """The fast engine rejects most subsystems — name the axis now
        rather than letting workers raise FastpathUnsupportedError."""
        from repro.sim.fastpath import FASTPATH_POLICIES

        for p in self.policies:
            if p.policy not in FASTPATH_POLICIES:
                raise ScenarioError(
                    "policies",
                    f"engine 'fast' supports only {sorted(FASTPATH_POLICIES)}; "
                    f"got {p.policy!r}",
                    entry=p.label,
                )
        for m in self.modes:
            for kind, params in (
                ("reliability", m.reliability),
                ("overload", m.overload),
                ("telemetry", m.telemetry),
                ("dispatcher", m.dispatcher),
                ("autoscaler", m.autoscaler),
            ):
                if params:
                    raise ScenarioError(
                        "modes",
                        f"engine 'fast' cannot run the {kind} subsystem; "
                        "use an exact engine (heap/calendar)",
                        entry=m.label,
                    )
        for sp in self.speeds:
            if sp.speeds is not None:
                raise ScenarioError(
                    "speeds",
                    "engine 'fast' cannot run heterogeneous server speeds; "
                    "use an exact engine (heap/calendar)",
                    entry=sp.label,
                )
        for f in self.faults:
            if f.chaos:
                raise ScenarioError(
                    "faults",
                    "engine 'fast' cannot inject faults; "
                    "use an exact engine (heap/calendar)",
                    entry=f.label,
                )
        unsupported = set(self.cluster_params) - {"record_server_queues"}
        if unsupported:
            raise ScenarioError(
                "cluster_params",
                f"engine 'fast' does not support {sorted(unsupported)}",
            )
        if self.config_overrides.get("model", "simulation") != "simulation":
            raise ScenarioError(
                "config_overrides", "engine 'fast' requires model='simulation'"
            )

    # ------------------------------------------------------------------
    # expansion
    # ------------------------------------------------------------------
    def _label(self, **fields: Any) -> str:
        try:
            raw = self.label_format.format(scenario=self.name, **fields)
        except (KeyError, IndexError, ValueError) as err:
            raise ScenarioError(
                "label_format", f"bad format {self.label_format!r}: {err}"
            ) from None
        return " ".join(raw.split())

    def expand(self) -> list[ScenarioCell]:
        """Validate, then produce every cell in deterministic order."""
        self.validate()
        cells: list[ScenarioCell] = []
        seen: dict[str, str] = {}
        for mode in self.modes:
            for wl in self.workloads:
                for policy in self.policies:
                    for load in self.loads:
                        for fault in self.faults:
                            for scale in self.scales:
                                for speed in self.speeds:
                                    cells.append(
                                        self._cell(
                                            mode, wl, policy, load, fault, scale, speed
                                        )
                                    )
                                    config = cells[-1].config
                                    key = json.dumps(
                                        asdict(config), sort_keys=True, default=list
                                    )
                                    if key in seen:
                                        raise ScenarioError(
                                            "label_format",
                                            f"cells {seen[key]!r} and "
                                            f"{config.label!r} expand to identical "
                                            "configs; include the distinguishing "
                                            "axis placeholder in label_format or "
                                            "drop the duplicate axis entry",
                                        )
                                    seen[key] = config.label
        return cells

    def _cell(
        self,
        mode: ModeAxis,
        wl: WorkloadAxis,
        policy: PolicyAxis,
        load: float,
        fault: FaultAxis,
        scale: ScaleAxis,
        speed: SpeedAxis = SpeedAxis(""),
    ) -> ScenarioCell:
        n_servers = scale.n_servers if scale.n_servers is not None else self.n_servers
        n_requests = scale.n_requests if scale.n_requests is not None else self.n_requests
        label = self._label(
            workload=wl.label,
            policy=policy.label,
            load=load,
            mode=mode.label,
            fault=fault.label,
            scale=scale.label,
            speed=speed.label,
            n_servers=n_servers,
            n_requests=n_requests,
            seed=self.seed,
        )
        wl_params = dict(wl.params)
        if wl.workload == "replay_file" and "digest" not in wl_params:
            # Pin the trace's content digest so the result-cache key is
            # content-addressed: a replay_file cell keyed by path alone
            # would keep returning stale cached results after the trace
            # file is edited or regenerated on disk.
            from repro.workload.replay import trace_digest

            path = wl_params.get("path")
            if path is None:
                raise ScenarioError(
                    "workloads",
                    f"cell {label!r}: replay_file requires a 'path' param",
                )
            try:
                wl_params["digest"] = trace_digest(path)
            except OSError as err:
                raise ScenarioError(
                    "workloads", f"cell {label!r}: replay_file {path!r}: {err}"
                ) from None
        overrides = dict(self.config_overrides)
        if speed.speeds is not None:
            overrides["server_speeds"] = tuple(speed.speeds)
        try:
            config = SimulationConfig(
                policy=policy.policy,
                policy_params=dict(policy.params),
                workload=wl.workload,
                workload_params=wl_params,
                load=float(load),
                n_servers=n_servers,
                n_requests=n_requests,
                seed=self.seed,
                engine=self.engine,
                cluster_params=dict(self.cluster_params),
                chaos_params=dict(fault.chaos),
                reliability_params=dict(mode.reliability),
                overload_params=dict(mode.overload),
                dispatcher_params=dict(mode.dispatcher),
                autoscaler_params=dict(mode.autoscaler),
                telemetry=dict(mode.telemetry),
                label=label,
                **overrides,
            )
        except (TypeError, ValueError) as err:
            raise ScenarioError("spec", f"cell {label!r}: {err}") from None
        return ScenarioCell(
            mode=mode.label,
            workload=wl.label,
            policy=policy.label,
            load=float(load),
            fault=fault.label,
            scale=scale.label,
            fault_value=fault.value,
            config=config,
            speed=speed.label,
        )

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        parallel: bool = True,
        max_workers: Optional[int] = None,
        cache=None,
        engine: Optional[str] = None,
        archive: Optional[str] = None,
    ) -> "ScenarioReport":
        """Expand and execute the grid; return the unified report.

        ``engine`` overrides the spec's engine for this run (the CLI's
        ``--engine`` knob); ``archive`` saves every result in the
        standard archive format.
        """
        cells = self.expand()
        results = run_cells(
            cells, parallel=parallel, max_workers=max_workers, cache=cache, engine=engine
        )
        if archive is not None:
            save_results(results, archive)
        return ScenarioReport(spec=self, cells=cells, results=list(results))


def run_cells(
    cells: Sequence[ScenarioCell],
    parallel: bool = True,
    max_workers: Optional[int] = None,
    cache=None,
    engine: Optional[str] = None,
) -> list[SimulationResult]:
    """Execute expanded cells through the standard sweep machinery.

    This is the single executor path every campaign shares: a warm
    :class:`SweepExecutor` pool when ``parallel`` (cache consulted,
    results in cell order), a serial :func:`parallel_sweep` otherwise —
    bit-identical either way.
    """
    configs = [cell.config for cell in cells]
    if parallel:
        with SweepExecutor(max_workers=max_workers, cache=cache, engine=engine) as pool:
            return pool.sweep(configs)
    return parallel_sweep(configs, parallel=False, cache=cache, engine=engine)


def verify_cells(cells: Sequence[ScenarioCell]) -> list[ScenarioCell]:
    """Copies of ``cells`` with the invariant oracle enabled.

    Used by the campaign ``verify=True`` / CLI ``--oracle`` path: every
    run re-executes under :class:`repro.verify.InvariantOracle`, and a
    violation propagates out of the sweep as
    :class:`repro.verify.InvariantViolation`. Oracle-enabled configs
    cache under their own key (``verify_params`` participates), so
    verified results never shadow the plain ones.
    """
    from dataclasses import replace

    return [
        replace(
            cell,
            config=cell.config.with_updates(verify_params={"enabled": True}),
        )
        for cell in cells
    ]


# ----------------------------------------------------------------------
# the report
# ----------------------------------------------------------------------

#: axis-label columns, in display order (degenerate unlabeled axes are
#: dropped from the table)
_AXIS_COLUMNS = ("mode", "workload", "policy", "load", "fault", "scale", "speed")

_METRIC_COLUMNS = (
    "mean_ms",
    "p95_ms",
    "goodput_pct",
    "timeouts",
    "retries",
    "lost",
    "rejected",
    "shed",
)


@dataclass
class ScenarioReport:
    """The unified campaign output: one row per cell."""

    spec: ScenarioSpec
    cells: list[ScenarioCell]
    results: list[SimulationResult]

    def __post_init__(self) -> None:
        if len(self.cells) != len(self.results):
            raise ValueError(
                f"{len(self.cells)} cells but {len(self.results)} results"
            )
        self.table = self._build_table()

    def _axis_columns(self) -> list[str]:
        columns = []
        for name in _AXIS_COLUMNS:
            if name == "load":
                if len(self.spec.loads) > 1 or "{load" in self.spec.label_format:
                    columns.append(name)
                continue
            values = {getattr(cell, name) for cell in self.cells}
            if values != {""}:
                columns.append(name)
        return columns

    def _build_table(self) -> ResultTable:
        axis_columns = self._axis_columns()
        table = ResultTable(axis_columns + list(_METRIC_COLUMNS))
        for cell, result in zip(self.cells, self.results):
            counters = result.chaos_counters
            offered = result.config.n_requests
            row = {name: getattr(cell, name) for name in axis_columns}
            row.update(
                mean_ms=result.mean_response_time_ms,
                p95_ms=result.p95_response_time * 1e3,
                goodput_pct=100.0 * (offered - result.n_failed) / offered,
                timeouts=int(counters.get("request_timeouts_fired", 0)),
                retries=int(counters.get("total_retries", 0)),
                lost=int(counters.get("requests_lost", 0)),
                rejected=int(counters.get("requests_rejected", 0)),
                shed=int(counters.get("requests_shed", 0)),
            )
            table.add(**row)
        return table

    def mode_comparison(self) -> list[str]:
        """Per-cell deltas of every mode against the spec's first mode.

        Empty when the spec has a single mode (nothing to compare).
        """
        if len(self.spec.modes) < 2:
            return []
        baseline_mode = self.spec.modes[0].label
        by_mode: dict[str, dict[tuple, dict]] = {}
        for cell, row in zip(self.cells, self.table.rows):
            key = (
                cell.workload,
                cell.policy,
                cell.load,
                cell.fault,
                cell.scale,
                cell.speed,
            )
            by_mode.setdefault(cell.mode, {})[key] = row
        baseline = by_mode.get(baseline_mode)
        if not baseline:
            return []
        lines = []
        for mode_label, cells in by_mode.items():
            if mode_label == baseline_mode:
                continue
            for key, row in cells.items():
                base = baseline.get(key)
                if base is None:
                    continue
                where = " ".join(str(part) for part in key if part != "")
                lines.append(
                    f"{mode_label} vs {baseline_mode} | {where}: "
                    f"p95 {base['p95_ms']:.1f} -> {row['p95_ms']:.1f} ms, "
                    f"goodput {base['goodput_pct']:.1f}% -> {row['goodput_pct']:.1f}%"
                )
        return lines

    def render(self) -> str:
        out = (
            f"== Scenario '{self.spec.name}': {len(self.cells)} cells ==\n"
            + self.table.render()
        )
        comparison = self.mode_comparison()
        if comparison:
            out += f"\n\n== Modes vs '{self.spec.modes[0].label}' ==\n"
            out += "\n".join(comparison)
        return out


# ----------------------------------------------------------------------
# declarative construction: dicts, files, builtins
# ----------------------------------------------------------------------

_SPEC_KEYS = frozenset(
    {
        "name",
        "policies",
        "workloads",
        "loads",
        "modes",
        "faults",
        "scales",
        "speeds",
        "n_servers",
        "n_requests",
        "seed",
        "engine",
        "cluster_params",
        "config_overrides",
        "label_format",
    }
)


def _fault_from_entry(entry: Any, n_servers: int) -> FaultAxis:
    """A fault entry: explicit chaos knobs, or a scalar ``intensity``
    routed through the chaos campaign's canonical scaling."""
    if isinstance(entry, FaultAxis):
        return entry
    if isinstance(entry, dict) and "intensity" in entry:
        from repro.experiments.chaos import chaos_params_for

        extra = set(entry) - {"intensity", "label"}
        if extra:
            raise ScenarioError(
                "faults",
                f"intensity shorthand takes only 'label', got {sorted(extra)}",
                entry=str(entry.get("label", "")),
            )
        intensity = float(entry["intensity"])
        return FaultAxis(
            label=entry.get("label", f"I={intensity:g}"),
            chaos=chaos_params_for(intensity, n_servers),
            value=intensity,
        )
    return entry  # _coerce in __post_init__ handles dicts/tuples


def spec_from_dict(data: dict[str, Any]) -> ScenarioSpec:
    """Build a :class:`ScenarioSpec` from plain (JSON-native) data.

    Unknown top-level keys are rejected so a typo'd axis name fails
    loudly instead of silently running the default grid.
    """
    if not isinstance(data, dict):
        raise ScenarioError("spec", f"expected a mapping, got {type(data).__name__}")
    unknown = set(data) - _SPEC_KEYS
    if unknown:
        raise ScenarioError(
            "spec",
            f"unknown key(s): {sorted(unknown)} (allowed: {sorted(_SPEC_KEYS)})",
        )
    kwargs = dict(data)
    if "faults" in kwargs:
        n_servers = int(kwargs.get("n_servers", ScenarioSpec.n_servers))
        kwargs["faults"] = tuple(
            _fault_from_entry(entry, n_servers) for entry in kwargs["faults"]
        )
    try:
        return ScenarioSpec(**kwargs)
    except ScenarioError:
        raise
    except (TypeError, ValueError) as err:
        raise ScenarioError("spec", str(err)) from None


def load_spec(path: str | Path) -> ScenarioSpec:
    """Read a spec file: ``.json``, or ``.yaml``/``.yml`` (YAML-lite).

    The YAML-lite subset is indentation-based mappings and ``- `` item
    lists with JSON-style inline values — see :func:`parse_yaml_lite`.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except OSError as err:
        raise ScenarioError("spec", f"cannot read {path}: {err}") from None
    if path.suffix == ".json":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as err:
            raise ScenarioError("spec", f"{path}: invalid JSON: {err}") from None
    elif path.suffix in (".yaml", ".yml"):
        try:
            data = parse_yaml_lite(text)
        except ValueError as err:
            raise ScenarioError("spec", f"{path}: {err}") from None
    else:
        raise ScenarioError(
            "spec",
            f"{path}: unsupported spec suffix {path.suffix!r} "
            "(expected .json, .yaml, or .yml)",
        )
    return spec_from_dict(data)


# ----------------------------------------------------------------------
# YAML-lite: the tiny declarative subset spec files actually need
# ----------------------------------------------------------------------

def _yaml_scalar(token: str, line_no: int) -> Any:
    token = token.strip()
    if token.startswith(("{", "[", '"')):
        try:
            return json.loads(token)
        except json.JSONDecodeError as err:
            raise ValueError(f"line {line_no}: invalid inline JSON {token!r}: {err}")
    lowered = token.lower()
    if lowered in ("true", "false"):
        return lowered == "true"
    if lowered in ("null", "~", ""):
        return None
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return token


def parse_yaml_lite(text: str) -> Any:
    """Parse the YAML subset scenario files use (no dependency on a
    YAML library, which the container does not ship).

    Supported: nested mappings by indentation, ``- `` list items
    (scalars or mappings), scalars (int/float/bool/null/bare strings),
    and JSON inline values (``{...}``, ``[...]``, ``"..."``). Full-line
    ``#`` comments are skipped. Tabs, anchors, multi-line strings, and
    flow collections beyond inline JSON are not.
    """
    lines: list[tuple[int, int, str]] = []  # (line_no, indent, content)
    for line_no, raw in enumerate(text.splitlines(), start=1):
        stripped = raw.strip()
        if not stripped or stripped.startswith("#"):
            continue
        if "\t" in raw[: len(raw) - len(raw.lstrip())]:
            raise ValueError(f"line {line_no}: tabs are not allowed in indentation")
        lines.append((line_no, len(raw) - len(raw.lstrip()), stripped))
    if not lines:
        return {}
    value, next_index = _parse_yaml_block(lines, 0, lines[0][1])
    if next_index != len(lines):
        line_no, _, content = lines[next_index]
        raise ValueError(f"line {line_no}: unexpected dedent before {content!r}")
    return value


def _parse_yaml_block(lines, index, indent):
    line_no, first_indent, content = lines[index]
    if first_indent != indent:
        raise ValueError(f"line {line_no}: inconsistent indentation")
    if content.startswith("- "):
        return _parse_yaml_list(lines, index, indent)
    return _parse_yaml_mapping(lines, index, indent)


def _parse_yaml_list(lines, index, indent):
    items = []
    while index < len(lines):
        line_no, line_indent, content = lines[index]
        if line_indent < indent:
            break
        if line_indent > indent or not content.startswith("- "):
            raise ValueError(f"line {line_no}: expected a '- ' list item")
        rest = content[2:].strip()
        # "- key: value" opens an inline mapping item whose further keys
        # sit on the following lines, indented past the dash.
        key, sep, _ = rest.partition(": ")
        if (sep or rest.endswith(":")) and not rest.startswith(("{", "[", '"')):
            virtual = [(line_no, indent + 2, rest)]
            index += 1
            while index < len(lines) and lines[index][1] >= indent + 2:
                virtual.append(lines[index])
                index += 1
            item, consumed = _parse_yaml_mapping(virtual, 0, indent + 2)
            if consumed != len(virtual):
                bad = virtual[consumed]
                raise ValueError(
                    f"line {bad[0]}: unexpected indentation in list item"
                )
            items.append(item)
        else:
            items.append(_yaml_scalar(rest, line_no))
            index += 1
    return items, index


def _parse_yaml_mapping(lines, index, indent):
    mapping: dict[str, Any] = {}
    while index < len(lines):
        line_no, line_indent, content = lines[index]
        if line_indent < indent:
            break
        if line_indent > indent:
            raise ValueError(f"line {line_no}: unexpected indentation")
        if content.startswith("- "):
            raise ValueError(f"line {line_no}: list item inside a mapping")
        key, sep, value = content.partition(":")
        if not sep or not key.strip():
            raise ValueError(f"line {line_no}: expected 'key: value', got {content!r}")
        key = key.strip()
        if key in mapping:
            raise ValueError(f"line {line_no}: duplicate key {key!r}")
        value = value.strip()
        if value:
            mapping[key] = _yaml_scalar(value, line_no)
            index += 1
        else:
            index += 1
            if index < len(lines) and lines[index][1] > indent:
                mapping[key], index = _parse_yaml_block(lines, index, lines[index][1])
            else:
                mapping[key] = None
    return mapping, index


# ----------------------------------------------------------------------
# built-in scenarios
# ----------------------------------------------------------------------

def composed_spec(
    n_requests: int = 4_000, seed: int = 0, quick: bool = False
) -> ScenarioSpec:
    """The ROADMAP one-liner: paper policies + chaos + overload-hardened
    reliability, at three cluster scales, with a trace-replay workload.

    ``quick`` trims the grid (two policies, two scales) for the <60s
    ``make scenario-smoke`` path while keeping at least one cell on
    every axis — including one replay cell.
    """
    from repro.experiments.chaos import (
        chaos_cluster_params,
        chaos_params_for,
        hardened_reliability_params,
    )
    from repro.experiments.overload import overload_control_params

    policies = (
        PolicyAxis("random", "random"),
        PolicyAxis("polling-3", "polling", {"poll_size": 3, "discard_slow": True}),
        PolicyAxis("broadcast-50ms", "broadcast", {"mean_interval": 0.05}),
        PolicyAxis("jiq", "jiq"),
        PolicyAxis("least-conn", "least_connections"),
    )
    scales = (
        ScaleAxis("8s", 8, max(200, n_requests // 2)),
        ScaleAxis("16s", 16, n_requests),
        ScaleAxis("32s", 32, 2 * n_requests),
    )
    if quick:
        policies = policies[:2]
        scales = scales[:2]
    return ScenarioSpec(
        name="composed",
        policies=policies,
        workloads=(
            WorkloadAxis("poisson", "poisson_exp"),
            WorkloadAxis("replay-bursty", "replay_bursty", {"burst_ratio": 10.0}),
        ),
        loads=(0.7,),
        modes=(
            ModeAxis("naive"),
            ModeAxis(
                "hardened",
                reliability=hardened_reliability_params(),
                overload=overload_control_params(),
            ),
        ),
        faults=(
            FaultAxis("I=0", {"loss": 0.0}, value=0.0),
            FaultAxis("I=1", chaos_params_for(1.0, 16), value=1.0),
        ),
        scales=scales,
        n_servers=16,
        n_requests=n_requests,
        seed=seed,
        cluster_params=chaos_cluster_params(),
        label_format="composed {workload} {policy} {mode} {fault} {scale}",
    )


#: named builtin specs accepted by ``repro scenario --spec <name>``
BUILTIN_SCENARIOS: dict[str, Callable[..., ScenarioSpec]] = {
    "composed": composed_spec,
}
