"""Determinism harness: prove the engines order events identically.

The calendar queue (:mod:`repro.sim.calendar`) is only admissible as a
performance knob if it is *invisible* in the numbers: every simulation
must produce bit-identical metrics under either engine. This module
runs a config suite under both engines and compares every result field
(except the config itself, which legitimately differs in its ``engine``
tag, and ``wall_seconds``, which is wall-clock noise).

``python -m repro parity`` runs the default suite — a miniature of the
paper's Figure 3 / Figure 4 grids (broadcast-interval and poll-size
sweeps over the three evaluation workloads) plus the cancel-heavy
timeout path — and prints a pass/fail report; it is also asserted in
``tests/experiments/test_engine_parity.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Optional, Sequence

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import SimulationResult, parallel_sweep

__all__ = ["EngineParityReport", "engine_parity", "parity_suite"]

#: result fields that must match bit-for-bit across engines
COMPARED_FIELDS = tuple(
    f.name
    for f in fields(SimulationResult)
    if f.name not in ("config", "wall_seconds")
)


def parity_suite(
    n_requests: int = 1_200, seed: int = 0, n_servers: int = 8
) -> list[SimulationConfig]:
    """A miniature fig3/fig4 config grid exercising every event pattern.

    Broadcast sweeps stress recurring timers, polling sweeps stress the
    request/reply chains, ``discard_slow`` and the prototype model
    stress cancellation and stolen-CPU rescheduling, and the ideal
    baseline stresses the bare dispatch path.
    """
    configs: list[SimulationConfig] = []
    for workload in ("medium_grain", "poisson_exp", "fine_grain"):
        base = SimulationConfig(
            workload=workload,
            n_servers=n_servers,
            n_requests=n_requests,
            seed=seed,
        )
        for load in (0.5, 0.9):
            # fig3 column: broadcast at two announcement frequencies + ideal
            configs.append(base.with_updates(load=load, policy="ideal"))
            for interval in (0.01, 0.1):
                configs.append(
                    base.with_updates(
                        load=load,
                        policy="broadcast",
                        policy_params={"mean_interval": interval},
                    )
                )
            # fig4 column: random + polling at two poll sizes
            configs.append(base.with_updates(load=load, policy="random"))
            for poll_size in (2, 4):
                configs.append(
                    base.with_updates(
                        load=load,
                        policy="polling",
                        policy_params={"poll_size": poll_size},
                    )
                )
        # timeout/cancel-heavy path: discarding slow polls, prototype model
        configs.append(
            base.with_updates(
                load=0.9,
                model="prototype",
                policy="polling",
                policy_params={"poll_size": 3, "discard_slow": True},
            )
        )
    # chaos path: fault injection (loss/dup/jitter, stragglers, storms,
    # a partition) over availability + timeout/retry machinery — every
    # random draw and recovery event must land identically per engine
    from repro.experiments.chaos import chaos_cluster_params, chaos_params_for

    chaos_base = SimulationConfig(
        workload="poisson_exp",
        n_servers=n_servers,
        n_requests=n_requests,
        seed=seed,
        load=0.7,
        cluster_params=chaos_cluster_params(max_retries=60),
        chaos_params=chaos_params_for(1.0, n_servers),
    )
    configs.append(
        chaos_base.with_updates(
            policy="polling", policy_params={"poll_size": 3, "discard_slow": True}
        )
    )
    configs.append(
        chaos_base.with_updates(
            policy="broadcast", policy_params={"mean_interval": 0.05}
        )
    )
    # reliability-hardened chaos path: deadline budgets, jittered
    # backoff, retry budgets, hedged requests, and circuit breakers all
    # active at once — hedge timers, backoff re-selects, and clone
    # cancellations must order identically per engine
    from repro.experiments.chaos import hardened_reliability_params

    configs.append(
        chaos_base.with_updates(
            policy="polling",
            policy_params={"poll_size": 3, "discard_slow": True},
            reliability_params={
                **hardened_reliability_params(),
                "deadline": 2.0,
                "backoff_base": 0.002,
                "retry_budget": 500.0,
            },
        )
    )
    # overload path: adaptive shedding with jittered probe admits,
    # fast-reject NACK round trips, and availability withdraw/rejoin
    # churn at 2x offered load — REJECT deliveries, shed-jitter draws,
    # and publisher stop/start must order identically per engine
    from repro.experiments.overload import (
        overload_cluster_params,
        overload_control_params,
    )

    overload_base = SimulationConfig(
        workload="mmpp_exp",
        n_servers=n_servers,
        n_requests=n_requests,
        seed=seed,
        load=2.0,
        cluster_params=overload_cluster_params(),
        overload_params=overload_control_params(),
    )
    configs.append(overload_base.with_updates(policy="random"))
    # overload x reliability: REJECT-driven breaker signals and hedge
    # exclusion on top of the shedding machinery
    configs.append(
        overload_base.with_updates(
            policy="polling",
            policy_params={"poll_size": 3, "discard_slow": True},
            reliability_params={
                **hardened_reliability_params(),
                "backoff_base": 0.002,
            },
        )
    )
    return configs


@dataclass
class EngineParityReport:
    """Outcome of an engine parity run."""

    n_configs: int
    mismatches: list[tuple[SimulationConfig, str, object, object]]

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def render(self) -> str:
        if self.ok:
            return (
                f"engine parity: OK — {self.n_configs} configs bit-identical "
                f"across heap and calendar ({len(COMPARED_FIELDS)} fields each)"
            )
        lines = [
            f"engine parity: FAILED — {len(self.mismatches)} mismatching "
            f"fields over {self.n_configs} configs"
        ]
        for config, name, heap_value, calendar_value in self.mismatches[:20]:
            lines.append(
                f"  {config.describe()}: {name} heap={heap_value!r} "
                f"calendar={calendar_value!r}"
            )
        if len(self.mismatches) > 20:
            lines.append(f"  ... and {len(self.mismatches) - 20} more")
        return "\n".join(lines)


def _values_equal(a: object, b: object) -> bool:
    """Bit-identity with one carve-out: NaN matches NaN (a policy with
    no polls reports ``mean_poll_time = nan`` under both engines)."""
    if a == b:
        return True
    if isinstance(a, float) and isinstance(b, float):
        return math.isnan(a) and math.isnan(b)
    return False


def engine_parity(
    configs: Optional[Sequence[SimulationConfig]] = None,
    parallel: bool = True,
    max_workers: Optional[int] = None,
) -> EngineParityReport:
    """Run ``configs`` under both engines and compare field-for-field."""
    configs = list(configs) if configs is not None else parity_suite()
    heap_results = parallel_sweep(
        configs, parallel=parallel, max_workers=max_workers, engine="heap"
    )
    calendar_results = parallel_sweep(
        configs, parallel=parallel, max_workers=max_workers, engine="calendar"
    )
    mismatches = []
    for config, heap_result, calendar_result in zip(
        configs, heap_results, calendar_results
    ):
        for name in COMPARED_FIELDS:
            heap_value = getattr(heap_result, name)
            calendar_value = getattr(calendar_result, name)
            if not _values_equal(heap_value, calendar_value):
                mismatches.append((config, name, heap_value, calendar_value))
    return EngineParityReport(n_configs=len(configs), mismatches=mismatches)
