"""Determinism harness: prove the engines order events identically.

The calendar queue (:mod:`repro.sim.calendar`) is only admissible as a
performance knob if it is *invisible* in the numbers: every simulation
must produce bit-identical metrics under either engine. This module
runs a config suite under both engines and compares every result field
(except the config itself, which legitimately differs in its ``engine``
tag, and ``wall_seconds``, which is wall-clock noise).

``python -m repro parity`` runs the default suite — a miniature of the
paper's Figure 3 / Figure 4 grids (broadcast-interval and poll-size
sweeps over the three evaluation workloads) plus the cancel-heavy
timeout path — and prints a pass/fail report; it is also asserted in
``tests/experiments/test_engine_parity.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Optional, Sequence

import numpy as np

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import SimulationResult, build_cluster, parallel_sweep

__all__ = [
    "EngineParityReport",
    "engine_parity",
    "parity_suite",
    "DistributionParityReport",
    "distribution_parity",
    "fastpath_suite",
    "MeanFieldCheckReport",
    "meanfield_check",
    "meanfield_suite",
]

#: result fields that must match bit-for-bit across engines
COMPARED_FIELDS = tuple(
    f.name
    for f in fields(SimulationResult)
    if f.name not in ("config", "wall_seconds")
)


def parity_suite(
    n_requests: int = 1_200, seed: int = 0, n_servers: int = 8
) -> list[SimulationConfig]:
    """A miniature fig3/fig4 config grid exercising every event pattern.

    Broadcast sweeps stress recurring timers, polling sweeps stress the
    request/reply chains, ``discard_slow`` and the prototype model
    stress cancellation and stolen-CPU rescheduling, and the ideal
    baseline stresses the bare dispatch path.
    """
    configs: list[SimulationConfig] = []
    for workload in ("medium_grain", "poisson_exp", "fine_grain"):
        base = SimulationConfig(
            workload=workload,
            n_servers=n_servers,
            n_requests=n_requests,
            seed=seed,
        )
        for load in (0.5, 0.9):
            # fig3 column: broadcast at two announcement frequencies + ideal
            configs.append(base.with_updates(load=load, policy="ideal"))
            for interval in (0.01, 0.1):
                configs.append(
                    base.with_updates(
                        load=load,
                        policy="broadcast",
                        policy_params={"mean_interval": interval},
                    )
                )
            # fig4 column: random + polling at two poll sizes
            configs.append(base.with_updates(load=load, policy="random"))
            for poll_size in (2, 4):
                configs.append(
                    base.with_updates(
                        load=load,
                        policy="polling",
                        policy_params={"poll_size": poll_size},
                    )
                )
        # timeout/cancel-heavy path: discarding slow polls, prototype model
        configs.append(
            base.with_updates(
                load=0.9,
                model="prototype",
                policy="polling",
                policy_params={"poll_size": 3, "discard_slow": True},
            )
        )
    # chaos path: fault injection (loss/dup/jitter, stragglers, storms,
    # a partition) over availability + timeout/retry machinery — every
    # random draw and recovery event must land identically per engine
    from repro.experiments.chaos import chaos_cluster_params, chaos_params_for

    chaos_base = SimulationConfig(
        workload="poisson_exp",
        n_servers=n_servers,
        n_requests=n_requests,
        seed=seed,
        load=0.7,
        cluster_params=chaos_cluster_params(max_retries=60),
        chaos_params=chaos_params_for(1.0, n_servers),
    )
    configs.append(
        chaos_base.with_updates(
            policy="polling", policy_params={"poll_size": 3, "discard_slow": True}
        )
    )
    configs.append(
        chaos_base.with_updates(
            policy="broadcast", policy_params={"mean_interval": 0.05}
        )
    )
    # reliability-hardened chaos path: deadline budgets, jittered
    # backoff, retry budgets, hedged requests, and circuit breakers all
    # active at once — hedge timers, backoff re-selects, and clone
    # cancellations must order identically per engine
    from repro.experiments.chaos import hardened_reliability_params

    configs.append(
        chaos_base.with_updates(
            policy="polling",
            policy_params={"poll_size": 3, "discard_slow": True},
            reliability_params={
                **hardened_reliability_params(),
                "deadline": 2.0,
                "backoff_base": 0.002,
                "retry_budget": 500.0,
            },
        )
    )
    # overload path: adaptive shedding with jittered probe admits,
    # fast-reject NACK round trips, and availability withdraw/rejoin
    # churn at 2x offered load — REJECT deliveries, shed-jitter draws,
    # and publisher stop/start must order identically per engine
    from repro.experiments.overload import (
        overload_cluster_params,
        overload_control_params,
    )

    overload_base = SimulationConfig(
        workload="mmpp_exp",
        n_servers=n_servers,
        n_requests=n_requests,
        seed=seed,
        load=2.0,
        cluster_params=overload_cluster_params(),
        overload_params=overload_control_params(),
    )
    configs.append(overload_base.with_updates(policy="random"))
    # overload x reliability: REJECT-driven breaker signals and hedge
    # exclusion on top of the shedding machinery
    configs.append(
        overload_base.with_updates(
            policy="polling",
            policy_params={"poll_size": 3, "discard_slow": True},
            reliability_params={
                **hardened_reliability_params(),
                "backoff_base": 0.002,
            },
        )
    )
    # dispatcher tier + autoscaler path: tier forward/backhaul routing,
    # failover suspicion, dispatcher crash storms, and closed-loop
    # scale up/down actuating through publish/withdrawal — chaos draws,
    # control-loop timers, and drain completions must order identically
    # per engine
    from repro.experiments.autoscale import (
        autoscale_cluster_params,
        autoscale_dispatcher_params,
        autoscale_scaling_params,
        autoscale_workload_params,
    )

    autoscale_base = SimulationConfig(
        workload="mmpp_exp",
        workload_params=autoscale_workload_params(),
        n_servers=n_servers,
        n_requests=n_requests,
        seed=seed,
        load=2.0,
        cluster_params=autoscale_cluster_params(),
        overload_params=overload_control_params(),
        dispatcher_params=autoscale_dispatcher_params(),
        autoscaler_params=autoscale_scaling_params(n_servers),
    )
    configs.append(
        autoscale_base.with_updates(
            policy="random",
            chaos_params={
                "dispatcher_storms": 2,
                "dispatcher_storm_size": 1,
                "dispatcher_storm_frac": 0.25,
            },
        )
    )
    # tier admission + per-dispatcher breakers + stale mapping views on
    # a selector policy with per-dispatcher local state
    configs.append(
        autoscale_base.with_updates(
            policy="least_connections",
            dispatcher_params={
                **autoscale_dispatcher_params(),
                "view_lag": 0.15,
                "admit_sojourn_target": 0.2,
                "breaker_threshold": 8,
                "breaker_cooldown": 0.5,
            },
        )
    )
    # invariant oracle enabled: the oracle chains onto the trace hook
    # and scans every few events but draws no randomness and schedules
    # nothing, so these two must stay bit-identical across engines like
    # any other config — one chaos+reliability cell, one full-stack cell
    configs.append(
        chaos_base.with_updates(
            policy="polling",
            policy_params={"poll_size": 3, "discard_slow": True},
            reliability_params=hardened_reliability_params(),
            verify_params={"enabled": True, "check_interval": 4},
        )
    )
    configs.append(
        autoscale_base.with_updates(
            policy="least_connections",
            verify_params={"enabled": True, "check_interval": 8},
        )
    )
    return configs


@dataclass
class EngineParityReport:
    """Outcome of an engine parity run."""

    n_configs: int
    mismatches: list[tuple[SimulationConfig, str, object, object]]

    @property
    def ok(self) -> bool:
        return not self.mismatches

    def render(self) -> str:
        if self.ok:
            return (
                f"engine parity: OK — {self.n_configs} configs bit-identical "
                f"across heap and calendar ({len(COMPARED_FIELDS)} fields each)"
            )
        lines = [
            f"engine parity: FAILED — {len(self.mismatches)} mismatching "
            f"fields over {self.n_configs} configs"
        ]
        for config, name, heap_value, calendar_value in self.mismatches[:20]:
            lines.append(
                f"  {config.describe()}: {name} heap={heap_value!r} "
                f"calendar={calendar_value!r}"
            )
        if len(self.mismatches) > 20:
            lines.append(f"  ... and {len(self.mismatches) - 20} more")
        return "\n".join(lines)


def _values_equal(a: object, b: object) -> bool:
    """Bit-identity with one carve-out: NaN matches NaN (a policy with
    no polls reports ``mean_poll_time = nan`` under both engines)."""
    if a == b:
        return True
    if isinstance(a, float) and isinstance(b, float):
        return math.isnan(a) and math.isnan(b)
    return False


def engine_parity(
    configs: Optional[Sequence[SimulationConfig]] = None,
    parallel: bool = True,
    max_workers: Optional[int] = None,
) -> EngineParityReport:
    """Run ``configs`` under both engines and compare field-for-field."""
    configs = list(configs) if configs is not None else parity_suite()
    heap_results = parallel_sweep(
        configs, parallel=parallel, max_workers=max_workers, engine="heap"
    )
    calendar_results = parallel_sweep(
        configs, parallel=parallel, max_workers=max_workers, engine="calendar"
    )
    mismatches = []
    for config, heap_result, calendar_result in zip(
        configs, heap_results, calendar_results
    ):
        for name in COMPARED_FIELDS:
            heap_value = getattr(heap_result, name)
            calendar_value = getattr(calendar_result, name)
            if not _values_equal(heap_value, calendar_value):
                mismatches.append((config, name, heap_value, calendar_value))
    return EngineParityReport(n_configs=len(configs), mismatches=mismatches)


# ----------------------------------------------------------------------
# Tier 2: distribution-level parity (fast path vs heap engine, small N)
# ----------------------------------------------------------------------
#
# The fast path (repro.sim.fastpath) is *approximate by construction* —
# selections inside one batch tick share a server-state snapshot — so
# bit-identity is the wrong bar. Instead each supported policy is run
# under both engines on the same workload stream and compared at the
# distribution level: a two-sample KS statistic over post-warmup
# response times, a KS-style distance over time-weighted queue-length
# occupancy, and the relative gap in mean response time.


def fastpath_suite(
    n_requests: int = 4_000, seed: int = 0, n_servers: int = 8
) -> list[SimulationConfig]:
    """Small-N configs covering every fast-path policy at two loads."""
    configs: list[SimulationConfig] = []
    base = SimulationConfig(
        workload="poisson_exp",
        n_servers=n_servers,
        n_requests=n_requests,
        seed=seed,
    )
    for load in (0.5, 0.9):
        configs.append(base.with_updates(load=load, policy="random"))
        for poll_size in (2, 4):
            configs.append(
                base.with_updates(
                    load=load,
                    policy="polling",
                    policy_params={"poll_size": poll_size},
                )
            )
        configs.append(
            base.with_updates(
                load=load, policy="broadcast", policy_params={"mean_interval": 0.01}
            )
        )
        configs.append(
            base.with_updates(
                load=load, policy="stale_jsq", policy_params={"update_interval": 0.02}
            )
        )
    return configs


def heap_distribution(config: SimulationConfig) -> tuple[np.ndarray, np.ndarray]:
    """Post-warmup response-time samples and normalized queue-length
    occupancy for a config run under the exact heap engine."""
    from repro.sim.monitor import step_occupancy

    instrumented = config.with_updates(
        engine="heap",
        cluster_params={**config.cluster_params, "record_server_queues": True},
    )
    cluster, _ = build_cluster(instrumented)
    metrics = cluster.run()
    mask = metrics.measurement_slice(config.warmup_fraction)
    responses = metrics.response_time[mask]
    warmup_index = int(config.n_requests * config.warmup_fraction)
    t0 = float(metrics.arrival_time[min(warmup_index, config.n_requests - 1)])
    t1 = float(metrics.arrival_time[-1])
    histograms = [
        step_occupancy(server.queue_recorder, t0, t1) for server in cluster.servers
    ]
    size = max(h.size for h in histograms)
    occupancy = np.zeros(size)
    for h in histograms:
        occupancy[: h.size] += h
    return responses, occupancy / occupancy.sum()


def fast_distribution(config: SimulationConfig) -> tuple[np.ndarray, np.ndarray]:
    """Fast-path counterpart of :func:`heap_distribution`."""
    from repro.sim.fastpath import run_fastpath

    run = run_fastpath(config.with_updates(engine="fast"))
    mask = run.metrics.measurement_slice(config.warmup_fraction)
    assert run.occupancy is not None
    return run.metrics.response_time[mask], run.occupancy


@dataclass
class DistributionParityCell:
    """One config's fast-vs-heap distribution comparison."""

    config: SimulationConfig
    ks_response: float
    occupancy_distance: float
    mean_rel_error: float
    n_samples: int


@dataclass
class DistributionParityReport:
    """Outcome of the tier-2 (distribution-level) parity run."""

    cells: list[DistributionParityCell]
    ks_threshold: float
    occupancy_threshold: float
    mean_tolerance: float

    def failures(self) -> list[DistributionParityCell]:
        return [
            cell
            for cell in self.cells
            if cell.ks_response > self.ks_threshold
            or cell.occupancy_distance > self.occupancy_threshold
            or cell.mean_rel_error > self.mean_tolerance
        ]

    @property
    def ok(self) -> bool:
        return not self.failures()

    def render(self) -> str:
        lines = [
            "distribution parity (fast vs heap): "
            + ("OK" if self.ok else "FAILED")
            + f" — {len(self.cells)} configs "
            f"(KS<={self.ks_threshold}, occupancy<={self.occupancy_threshold}, "
            f"mean within {self.mean_tolerance:.0%})"
        ]
        failing = set(id(cell) for cell in self.failures())
        for cell in self.cells:
            marker = "FAIL" if id(cell) in failing else "ok"
            lines.append(
                f"  [{marker:>4}] {cell.config.describe()}: "
                f"ks={cell.ks_response:.4f} occ={cell.occupancy_distance:.4f} "
                f"mean_err={cell.mean_rel_error:.2%} n={cell.n_samples}"
            )
        return "\n".join(lines)


def distribution_parity(
    configs: Optional[Sequence[SimulationConfig]] = None,
    ks_threshold: float = 0.08,
    occupancy_threshold: float = 0.08,
    mean_tolerance: float = 0.05,
) -> DistributionParityReport:
    """Run the tier-2 comparison over ``configs`` (default suite)."""
    from repro.analysis.stats import distribution_distance, ks_statistic

    configs = list(configs) if configs is not None else fastpath_suite()
    cells: list[DistributionParityCell] = []
    for config in configs:
        heap_responses, heap_occupancy = heap_distribution(config)
        fast_responses, fast_occupancy = fast_distribution(config)
        heap_mean = float(heap_responses.mean())
        fast_mean = float(fast_responses.mean())
        cells.append(
            DistributionParityCell(
                config=config,
                ks_response=ks_statistic(heap_responses, fast_responses),
                occupancy_distance=distribution_distance(
                    heap_occupancy, fast_occupancy
                ),
                mean_rel_error=abs(fast_mean - heap_mean) / heap_mean,
                n_samples=int(min(heap_responses.size, fast_responses.size)),
            )
        )
    return DistributionParityReport(
        cells=cells,
        ks_threshold=ks_threshold,
        occupancy_threshold=occupancy_threshold,
        mean_tolerance=mean_tolerance,
    )


# ----------------------------------------------------------------------
# Tier 3: mean-field cross-check (fast path vs N -> infinity theory)
# ----------------------------------------------------------------------


def meanfield_suite(
    n_servers: int = 1_000,
    n_requests: int = 400_000,
    seed: int = 0,
    load: float = 0.8,
) -> list[SimulationConfig]:
    """Large-N fast-path cells with a supermarket-model limit.

    ``warmup_fraction=0.25`` discards the fill-up transient: at load
    0.8 the measurement window spans ~15 relaxation times, so the
    time-average sits within ~1% of stationarity — well inside the 5%
    acceptance band.
    """
    base = SimulationConfig(
        workload="poisson_exp",
        n_servers=n_servers,
        n_requests=n_requests,
        seed=seed,
        load=load,
        warmup_fraction=0.25,
        engine="fast",
    )
    return [
        base.with_updates(policy="random"),
        base.with_updates(policy="polling", policy_params={"poll_size": 2}),
    ]


@dataclass
class MeanFieldCheckCell:
    """One large-N cell against its mean-field prediction."""

    config: SimulationConfig
    predicted: float
    simulated: float

    @property
    def rel_error(self) -> float:
        return abs(self.simulated - self.predicted) / self.predicted


@dataclass
class MeanFieldCheckReport:
    """Outcome of the tier-3 (mean-field) validation run."""

    cells: list[MeanFieldCheckCell]
    tolerance: float

    @property
    def ok(self) -> bool:
        return all(cell.rel_error <= self.tolerance for cell in self.cells)

    def render(self) -> str:
        lines = [
            "mean-field check (fast path vs N->inf): "
            + ("OK" if self.ok else "FAILED")
            + f" — {len(self.cells)} cells (tolerance {self.tolerance:.0%})"
        ]
        for cell in self.cells:
            marker = "ok" if cell.rel_error <= self.tolerance else "FAIL"
            lines.append(
                f"  [{marker:>4}] {cell.config.describe()} N={cell.config.n_servers}: "
                f"sim={cell.simulated * 1e3:.3f}ms "
                f"pred={cell.predicted * 1e3:.3f}ms "
                f"err={cell.rel_error:.2%}"
            )
        return "\n".join(lines)


def meanfield_check(
    configs: Optional[Sequence[SimulationConfig]] = None,
    tolerance: float = 0.05,
) -> MeanFieldCheckReport:
    """Run large-N fast-path cells against the mean-field solver."""
    from repro.analysis.meanfield import meanfield_prediction
    from repro.experiments.runner import run_simulation

    configs = list(configs) if configs is not None else meanfield_suite()
    cells: list[MeanFieldCheckCell] = []
    for config in configs:
        prediction = meanfield_prediction(config)
        result = run_simulation(config)
        cells.append(
            MeanFieldCheckCell(
                config=config,
                predicted=prediction.mean_response_time,
                simulated=result.mean_response_time,
            )
        )
    return MeanFieldCheckReport(cells=cells, tolerance=tolerance)
