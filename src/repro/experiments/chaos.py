"""Chaos campaign: sweep fault intensity per policy, report resilience.

The paper's robustness story (§3.1) is qualitative — "the service
infrastructure [operates] smoothly in the presence of transient
failures". This driver quantifies it: each policy runs the same
workload at increasing *fault intensity* (message loss + duplication +
jitter + stragglers + partitions + crash storms, all scaled together),
and the campaign reports how response time, timeouts, retries, and
requests lost forever degrade relative to the fault-free baseline.

Everything flows through the standard machinery — configs are ordinary
:class:`SimulationConfig` objects (chaos knobs in ``chaos_params``), so
campaigns hit the content-addressed result cache, archive via
:func:`~repro.experiments.io.save_results`, and parallelize over a
:class:`~repro.experiments.executor.SweepExecutor`. Fixed seed in,
bit-identical report out, under either event engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

from repro.experiments.config import SimulationConfig
from repro.experiments.executor import SweepExecutor
from repro.experiments.io import save_results
from repro.experiments.results import ResultTable
from repro.experiments.runner import SimulationResult, parallel_sweep

__all__ = [
    "DEFAULT_INTENSITIES",
    "DEFAULT_POLICIES",
    "DEFAULT_RELIABILITY_MODES",
    "NAIVE_VS_HARDENED",
    "ResilienceReport",
    "chaos_campaign",
    "chaos_cluster_params",
    "chaos_params_for",
    "hardened_reliability_params",
]

#: (label, policy, policy_params) triples the default campaign compares:
#: the no-information baseline, the paper's recommended polling
#: configuration, and the broadcast alternative
DEFAULT_POLICIES: tuple[tuple[str, str, dict], ...] = (
    ("random", "random", {}),
    ("polling-3", "polling", {"poll_size": 3, "discard_slow": True}),
    ("broadcast-50ms", "broadcast", {"mean_interval": 0.05}),
)

#: fault intensity grid: 0 = fault-free baseline, 1 = full chaos
DEFAULT_INTENSITIES: tuple[float, ...] = (0.0, 0.5, 1.0)


def hardened_reliability_params() -> dict[str, Any]:
    """The canonical hardened :class:`~repro.cluster.reliability.
    ReliabilityPolicy` knobs for naive-vs-hardened comparisons.

    Hedging at the p90 of observed response times recovers lost
    requests/responses at millisecond scale instead of waiting out the
    full client timeout; breakers (4 consecutive failures, 300 ms
    cooldown) route around crashed/partitioned servers faster than the
    availability TTL expires their soft state. The values were tuned
    empirically: lower breaker thresholds trip on random message loss
    and *hurt*, higher ones react too slowly to storms.
    """
    return {
        "hedge_quantile": 0.9,
        "breaker_threshold": 4,
        "breaker_cooldown": 0.3,
    }


#: (label, reliability_params) pairs for the campaign's reliability
#: axis; the default single naive mode keeps legacy campaign output
#: (labels, row counts) unchanged
DEFAULT_RELIABILITY_MODES: tuple[tuple[str, dict], ...] = (("naive", {}),)

#: the two-mode axis for naive-vs-hardened comparisons (the hardened
#: leg runs the exact same fault schedule: chaos schedules derive from
#: the seed, not from the reliability layer's substreams)
NAIVE_VS_HARDENED: tuple[tuple[str, dict], ...] = (
    ("naive", {}),
    ("hardened", hardened_reliability_params()),
)


def chaos_cluster_params(
    request_timeout: float = 0.25,
    max_retries: int = 40,
    refresh: float = 0.2,
    ttl: float = 0.6,
) -> dict[str, Any]:
    """Cluster knobs every chaos run needs: the availability subsystem
    (so crashed/partitioned servers age out of candidate sets) and
    client-side timeout/retry loss recovery."""
    return {
        "availability": True,
        "availability_refresh": float(refresh),
        "availability_ttl": float(ttl),
        "request_timeout": float(request_timeout),
        "max_retries": int(max_retries),
    }


def chaos_params_for(intensity: float, n_servers: int = 16) -> dict[str, Any]:
    """Scale every :class:`~repro.cluster.ChaosSpec` knob by one scalar.

    ``intensity <= 0`` returns a zero-fault spec — the injector is
    installed (so resilience counters are reported) but makes no random
    draws and schedules no events, which keeps the baseline row
    observationally identical to an un-instrumented run.
    """
    if intensity <= 0.0:
        return {"loss": 0.0}
    i = float(intensity)
    return {
        "loss": 0.08 * i,
        "duplicate": 0.04 * i,
        "jitter_mean": 0.0005 * i,
        "stragglers": int(round(2 * i)),
        "straggle_factor": 4.0,
        "partitions": 1 if i >= 0.5 else 0,
        "partition_servers": max(1, n_servers // 4),
        "storms": 1,
        "storm_size": max(1, int(round(n_servers * 0.25 * i))),
    }


@dataclass
class ResilienceReport:
    """The campaign's output: one row per (mode, policy, intensity) cell."""

    table: ResultTable
    results: list[SimulationResult] = field(default_factory=list)

    def mode_comparison(self) -> list[str]:
        """Per-cell deltas of every hardened mode against ``naive``.

        Empty when the campaign ran a single reliability mode (nothing
        to compare) or has no ``naive`` leg.
        """
        by_mode: dict[str, dict[tuple, dict]] = {}
        for row in self.table.rows:
            mode = row.get("mode", "naive")
            by_mode.setdefault(mode, {})[(row["policy"], row["intensity"])] = row
        naive = by_mode.get("naive")
        if naive is None or len(by_mode) < 2:
            return []
        lines = []
        for mode, cells in by_mode.items():
            if mode == "naive":
                continue
            for key, row in cells.items():
                base = naive.get(key)
                if base is None or key[1] == 0.0:
                    continue
                policy, intensity = key
                delta = (
                    (row["p95_ms"] - base["p95_ms"]) / base["p95_ms"] * 100.0
                    if base["p95_ms"] > 0
                    else math.nan
                )
                lines.append(
                    f"{mode} vs naive | {policy} I={intensity:g}: "
                    f"p95 {base['p95_ms']:.1f} -> {row['p95_ms']:.1f} ms "
                    f"({delta:+.0f}%), lost {base['lost']} -> {row['lost']}"
                )
        return lines

    def render(self) -> str:
        out = f"== Chaos campaign: resilience report ==\n{self.table.render()}"
        comparison = self.mode_comparison()
        if comparison:
            out += "\n\n== Reliability modes (identical fault schedules) ==\n"
            out += "\n".join(comparison)
        return out


def chaos_campaign(
    policies: Sequence[tuple[str, str, dict]] = DEFAULT_POLICIES,
    intensities: Sequence[float] = DEFAULT_INTENSITIES,
    workload: str = "poisson_exp",
    load: float = 0.7,
    n_servers: int = 16,
    n_requests: int = 6_000,
    seed: int = 0,
    cluster_params: Optional[dict[str, Any]] = None,
    reliability_modes: Sequence[tuple[str, dict]] = DEFAULT_RELIABILITY_MODES,
    parallel: bool = True,
    max_workers: Optional[int] = None,
    cache=None,
    engine: Optional[str] = None,
    archive: Optional[str] = None,
) -> ResilienceReport:
    """Run the mode × policy × intensity grid, build the resilience report.

    Each row reports the standard latency statistics plus the chaos
    counters and ``vs_baseline`` — mean response time normalized to the
    same (mode, policy)'s intensity-0 row. ``reliability_modes`` adds a
    reliability axis — e.g. :data:`NAIVE_VS_HARDENED` runs every cell
    twice, naive and hardened, under *identical* fault schedules (chaos
    schedules derive from the seed substreams, which the reliability
    layer never touches). ``archive`` (a path) additionally saves every
    result in the standard archive format.
    """
    params = cluster_params if cluster_params is not None else chaos_cluster_params()
    modes = list(reliability_modes)
    configs: list[SimulationConfig] = []
    keys: list[tuple[str, str, float]] = []
    for mode_label, reliability_params in modes:
        for label, policy, policy_params in policies:
            for intensity in intensities:
                # The single-mode (legacy) grid keeps its historical
                # labels so archives/caches stay addressable.
                run_label = f"chaos {label} I={intensity:g}"
                if len(modes) > 1:
                    run_label += f" {mode_label}"
                configs.append(
                    SimulationConfig(
                        policy=policy,
                        policy_params=dict(policy_params),
                        workload=workload,
                        load=load,
                        n_servers=n_servers,
                        n_requests=n_requests,
                        seed=seed,
                        cluster_params=dict(params),
                        chaos_params=chaos_params_for(intensity, n_servers),
                        reliability_params=dict(reliability_params),
                        label=run_label,
                    )
                )
                keys.append((mode_label, label, float(intensity)))

    if parallel:
        with SweepExecutor(max_workers=max_workers, cache=cache, engine=engine) as pool:
            results = pool.sweep(configs)
    else:
        results = parallel_sweep(configs, parallel=False, cache=cache, engine=engine)

    by_key = dict(zip(keys, results))
    table = ResultTable(
        [
            "mode",
            "policy",
            "intensity",
            "mean_ms",
            "p95_ms",
            "timeouts",
            "crash_retries",
            "retries",
            "lost",
            "rejected",
            "fail_fast",
            "hedge_wins",
            "breaker_opens",
            "msg_lost",
            "msg_dup",
            "recovery_ms",
            "vs_baseline",
        ]
    )
    for mode_label, _ in modes:
        for label, _, _ in policies:
            baseline = by_key[(mode_label, label, float(intensities[0]))]
            for intensity in intensities:
                result = by_key[(mode_label, label, float(intensity))]
                counters = result.chaos_counters
                base = baseline.mean_response_time
                table.add(
                    mode=mode_label,
                    policy=label,
                    intensity=float(intensity),
                    mean_ms=result.mean_response_time_ms,
                    p95_ms=result.p95_response_time * 1e3,
                    timeouts=int(counters.get("request_timeouts_fired", 0)),
                    crash_retries=int(counters.get("server_loss_retries", 0)),
                    retries=int(counters.get("total_retries", 0)),
                    lost=int(counters.get("requests_lost", 0)),
                    rejected=int(counters.get("requests_rejected", 0)),
                    fail_fast=int(
                        counters.get("retry_budget_exhausted", 0)
                        + counters.get("deadline_exceeded", 0)
                    ),
                    hedge_wins=int(counters.get("hedge_wins", 0)),
                    breaker_opens=int(counters.get("breaker_opens", 0)),
                    msg_lost=int(counters.get("messages_lost", 0)),
                    msg_dup=int(counters.get("messages_duplicated", 0)),
                    recovery_ms=counters.get("recovery_max_s", 0.0) * 1e3,
                    vs_baseline=(
                        result.mean_response_time / base
                        if math.isfinite(base) and base > 0
                        else math.nan
                    ),
                )
    if archive is not None:
        save_results(results, archive)
    return ResilienceReport(table=table, results=list(results))
