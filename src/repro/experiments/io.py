"""Persist and reload experiment results (JSON).

Sweeps are expensive; archiving their results lets analyses, reports,
and regressions run without re-simulating. The format is plain JSON —
one document with a schema version, the library version, and a list of
``SimulationResult`` records (configs nested) — so archives stay
greppable and diffable.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from pathlib import Path
from typing import Sequence

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import SimulationResult

__all__ = ["save_results", "load_results"]

_SCHEMA_VERSION = 1


def _result_to_dict(result: SimulationResult) -> dict:
    out = asdict(result)
    # tuples -> lists happen automatically via asdict+json; nothing else
    # in the dataclasses is non-JSON (dicts, floats, ints, strings).
    return out


def save_results(results: Sequence[SimulationResult], path: str | Path) -> None:
    """Write results (and their configs) to ``path`` as JSON."""
    from repro import __version__

    document = {
        "schema_version": _SCHEMA_VERSION,
        "library_version": __version__,
        "results": [_result_to_dict(result) for result in results],
    }
    Path(path).write_text(json.dumps(document, indent=1, sort_keys=True))


def load_results(path: str | Path) -> list[SimulationResult]:
    """Reload results written by :func:`save_results`."""
    document = json.loads(Path(path).read_text())
    version = document.get("schema_version")
    if not isinstance(version, int):
        raise ValueError(
            f"{path}: missing or malformed schema_version {version!r} "
            f"(expected an integer; is this a repro results archive?)"
        )
    if version > _SCHEMA_VERSION:
        raise ValueError(
            f"{path}: results schema {version} is newer than this library "
            f"supports ({_SCHEMA_VERSION}); upgrade repro to read this archive"
        )
    if version < _SCHEMA_VERSION:
        raise ValueError(
            f"{path}: results schema {version} predates the supported "
            f"schema {_SCHEMA_VERSION}; re-run the sweep to regenerate it"
        )
    out = []
    for record in document["results"]:
        config_dict = record.pop("config")
        if config_dict.get("server_speeds") is not None:
            config_dict["server_speeds"] = tuple(config_dict["server_speeds"])
        record["server_counts"] = tuple(record.get("server_counts", ()))
        config = SimulationConfig(**config_dict)
        out.append(SimulationResult(config=config, **record))
    return out
