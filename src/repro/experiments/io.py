"""Persist and reload experiment results (JSON) and telemetry exports.

Sweeps are expensive; archiving their results lets analyses, reports,
and regressions run without re-simulating. The format is plain JSON —
one document with a schema version, the library version, and a list of
``SimulationResult`` records (configs nested) — so archives stay
greppable and diffable.

Telemetry runs additionally export **spans** (one JSON object per line,
after a schema header — JSONL streams into jq/pandas/duckdb without
loading the whole file), **series** (plain CSV, one column per sampled
series), and **accounting** (one JSON document). All three carry
``TELEMETRY_SCHEMA_VERSION`` so future layout changes are detectable.
"""

from __future__ import annotations

import csv
import json
import math
from dataclasses import asdict
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import SimulationResult
from repro.telemetry.spans import ATTEMPT_FIELDS, SPAN_FIELDS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.telemetry import TelemetryReport

__all__ = [
    "save_results",
    "load_results",
    "save_attempts_jsonl",
    "load_attempts_jsonl",
    "save_spans_jsonl",
    "load_spans_jsonl",
    "save_series_csv",
    "load_series_csv",
    "save_telemetry",
    "validate_telemetry_dir",
]

_SCHEMA_VERSION = 1

#: schema version stamped on every telemetry export artifact.
#: v2 added the per-span ``rejects`` count (admission rejections the
#: request absorbed); v1 exports stay loadable — the field defaults
#: to 0 on load.
TELEMETRY_SCHEMA_VERSION = 2

#: span fields introduced by schema v2 (optional when loading v1 files)
_SPAN_FIELDS_ADDED_V2 = frozenset({"rejects"})


def _result_to_dict(result: SimulationResult) -> dict:
    out = asdict(result)
    # tuples -> lists happen automatically via asdict+json; nothing else
    # in the dataclasses is non-JSON (dicts, floats, ints, strings).
    return out


def save_results(results: Sequence[SimulationResult], path: str | Path) -> None:
    """Write results (and their configs) to ``path`` as JSON."""
    from repro import __version__

    document = {
        "schema_version": _SCHEMA_VERSION,
        "library_version": __version__,
        "results": [_result_to_dict(result) for result in results],
    }
    Path(path).write_text(json.dumps(document, indent=1, sort_keys=True))


def load_results(path: str | Path) -> list[SimulationResult]:
    """Reload results written by :func:`save_results`."""
    document = json.loads(Path(path).read_text())
    version = document.get("schema_version")
    if not isinstance(version, int):
        raise ValueError(
            f"{path}: missing or malformed schema_version {version!r} "
            f"(expected an integer; is this a repro results archive?)"
        )
    if version > _SCHEMA_VERSION:
        raise ValueError(
            f"{path}: results schema {version} is newer than this library "
            f"supports ({_SCHEMA_VERSION}); upgrade repro to read this archive"
        )
    if version < _SCHEMA_VERSION:
        raise ValueError(
            f"{path}: results schema {version} predates the supported "
            f"schema {_SCHEMA_VERSION}; re-run the sweep to regenerate it"
        )
    out = []
    for record in document["results"]:
        config_dict = record.pop("config")
        if config_dict.get("server_speeds") is not None:
            config_dict["server_speeds"] = tuple(config_dict["server_speeds"])
        record["server_counts"] = tuple(record.get("server_counts", ()))
        config = SimulationConfig(**config_dict)
        out.append(SimulationResult(config=config, **record))
    return out


# ----------------------------------------------------------------------
# telemetry exports (spans JSONL, series CSV, accounting JSON)
# ----------------------------------------------------------------------

_INT_SPAN_FIELDS = frozenset({"index", "client_id", "server_id", "retries", "rejects"})


def _nan_to_null(record: dict) -> dict:
    """Non-finite floats become JSON ``null`` (strict-JSON friendly)."""
    return {
        key: (None if isinstance(value, float) and not math.isfinite(value) else value)
        for key, value in record.items()
    }


def _null_to_nan(record: dict) -> dict:
    return {
        key: (math.nan if value is None and key not in _INT_SPAN_FIELDS else value)
        for key, value in record.items()
    }


def save_spans_jsonl(spans: Sequence, path: str | Path) -> None:
    """Write request spans as JSONL: a schema header line, then one
    span object per line (``nan`` timestamps serialize as ``null``)."""
    header = {
        "schema_version": TELEMETRY_SCHEMA_VERSION,
        "kind": "repro.telemetry.spans",
        "fields": list(SPAN_FIELDS),
    }
    lines = [json.dumps(header, sort_keys=True)]
    lines.extend(
        json.dumps(_nan_to_null(span.to_dict()), sort_keys=True) for span in spans
    )
    Path(path).write_text("\n".join(lines) + "\n")


def load_spans_jsonl(path: str | Path) -> list[dict]:
    """Reload (and validate) a span export written by
    :func:`save_spans_jsonl`; returns one dict per span."""
    lines = Path(path).read_text().splitlines()
    if not lines:
        raise ValueError(f"{path}: empty spans file (expected a schema header line)")
    header = json.loads(lines[0])
    version = header.get("schema_version")
    if header.get("kind") != "repro.telemetry.spans" or not isinstance(version, int):
        raise ValueError(
            f"{path}: malformed telemetry spans header {lines[0]!r} "
            "(is this a repro spans export?)"
        )
    if version > TELEMETRY_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: spans schema {version} is newer than this library "
            f"supports ({TELEMETRY_SCHEMA_VERSION}); upgrade repro to read it"
        )
    required = set(SPAN_FIELDS)
    if version < 2:
        # v1 exports predate the rejects field; default it on load so
        # downstream consumers see the full v2 shape.
        required = required - _SPAN_FIELDS_ADDED_V2
    out = []
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        record = json.loads(line)
        missing = required - set(record)
        if missing:
            raise ValueError(
                f"{path}:{lineno}: span record missing field(s) {sorted(missing)}"
            )
        if version < 2:
            record.setdefault("rejects", 0)
        out.append(_null_to_nan(record))
    return out


def save_attempts_jsonl(attempts: Sequence, path: str | Path) -> None:
    """Write per-attempt dispatch records as JSONL (same layout contract
    as :func:`save_spans_jsonl`: schema header, then one record/line)."""
    header = {
        "schema_version": TELEMETRY_SCHEMA_VERSION,
        "kind": "repro.telemetry.attempts",
        "fields": list(ATTEMPT_FIELDS),
    }
    lines = [json.dumps(header, sort_keys=True)]
    lines.extend(
        json.dumps(_nan_to_null(attempt.to_dict()), sort_keys=True)
        for attempt in attempts
    )
    Path(path).write_text("\n".join(lines) + "\n")


def load_attempts_jsonl(path: str | Path) -> list[dict]:
    """Reload (and validate) an attempt export written by
    :func:`save_attempts_jsonl`; returns one dict per attempt."""
    lines = Path(path).read_text().splitlines()
    if not lines:
        raise ValueError(f"{path}: empty attempts file (expected a schema header line)")
    header = json.loads(lines[0])
    version = header.get("schema_version")
    if header.get("kind") != "repro.telemetry.attempts" or not isinstance(version, int):
        raise ValueError(
            f"{path}: malformed telemetry attempts header {lines[0]!r} "
            "(is this a repro attempts export?)"
        )
    if version > TELEMETRY_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: attempts schema {version} is newer than this library "
            f"supports ({TELEMETRY_SCHEMA_VERSION}); upgrade repro to read it"
        )
    required = set(ATTEMPT_FIELDS)
    out = []
    for lineno, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        record = json.loads(line)
        missing = required - set(record)
        if missing:
            raise ValueError(
                f"{path}:{lineno}: attempt record missing field(s) {sorted(missing)}"
            )
        out.append(_null_to_nan(record))
    return out


def save_series_csv(series: dict[str, np.ndarray], path: str | Path) -> None:
    """Write sampled time series as CSV (``time`` first, then each
    series as a column; a ``# repro.telemetry.series v<N>`` comment line
    carries the schema version)."""
    if "time" not in series:
        raise ValueError("series must contain a 'time' grid")
    names = ["time"] + sorted(name for name in series if name != "time")
    n = len(series["time"])
    for name in names:
        if len(series[name]) != n:
            raise ValueError(f"series {name!r} length {len(series[name])} != {n}")
    with open(path, "w", newline="") as fh:
        fh.write(f"# repro.telemetry.series v{TELEMETRY_SCHEMA_VERSION}\n")
        writer = csv.writer(fh)
        writer.writerow(names)
        for i in range(n):
            writer.writerow([repr(float(series[name][i])) for name in names])


def load_series_csv(path: str | Path) -> dict[str, np.ndarray]:
    """Reload a series export written by :func:`save_series_csv`."""
    with open(path, newline="") as fh:
        first = fh.readline()
        if not first.startswith("# repro.telemetry.series v"):
            raise ValueError(f"{path}: missing telemetry series header comment")
        version = int(first.rsplit("v", 1)[1])
        if version > TELEMETRY_SCHEMA_VERSION:
            raise ValueError(
                f"{path}: series schema {version} is newer than this library "
                f"supports ({TELEMETRY_SCHEMA_VERSION}); upgrade repro to read it"
            )
        reader = csv.reader(fh)
        names = next(reader)
        columns: list[list[float]] = [[] for _ in names]
        for row in reader:
            for column, cell in zip(columns, row):
                column.append(float(cell))
    return {name: np.asarray(column) for name, column in zip(names, columns)}


def save_telemetry(report: "TelemetryReport", directory: str | Path) -> dict[str, Path]:
    """Export a telemetry report: ``spans.jsonl``, ``series.csv``, and
    ``accounting.json`` under ``directory`` (created if needed).

    Returns the written paths keyed by artifact name.
    """
    root = Path(directory)
    root.mkdir(parents=True, exist_ok=True)
    paths = {
        "spans": root / "spans.jsonl",
        "series": root / "series.csv",
        "accounting": root / "accounting.json",
    }
    save_spans_jsonl(report.spans, paths["spans"])
    save_series_csv(report.series, paths["series"])
    if report.attempts:
        # Only reliability-hardened runs produce attempt records; the
        # file is absent (not empty) for everything else, so existing
        # export consumers see an unchanged directory layout.
        paths["attempts"] = root / "attempts.jsonl"
        save_attempts_jsonl(report.attempts, paths["attempts"])
    paths["accounting"].write_text(
        json.dumps(
            {
                "schema_version": TELEMETRY_SCHEMA_VERSION,
                "kind": "repro.telemetry.accounting",
                "sample_interval": report.sample_interval,
                "spans_dropped": report.spans_dropped,
                "accounting": report.accounting,
            },
            indent=1,
            sort_keys=True,
        )
    )
    return paths


def validate_telemetry_dir(directory: str | Path) -> dict[str, int]:
    """Re-read a telemetry export and check it against the schema.

    Returns ``{"spans": n, "series": n_samples, "series_columns": k}``
    (plus ``"attempts": n`` when an ``attempts.jsonl`` is present —
    reliability-hardened runs only); raises ``ValueError``/``OSError``
    on any malformed artifact. Used by ``make telemetry-smoke`` and
    ``make resilience-smoke`` to gate exports in CI.
    """
    root = Path(directory)
    spans = load_spans_jsonl(root / "spans.jsonl")
    series = load_series_csv(root / "series.csv")
    accounting = json.loads((root / "accounting.json").read_text())
    if accounting.get("kind") != "repro.telemetry.accounting":
        raise ValueError(f"{root}/accounting.json: wrong or missing kind")
    if not isinstance(accounting.get("schema_version"), int):
        raise ValueError(f"{root}/accounting.json: missing schema_version")
    if "time" not in series:
        raise ValueError(f"{root}/series.csv: missing 'time' column")
    out = {
        "spans": len(spans),
        "series": len(series["time"]),
        "series_columns": len(series) - 1,
    }
    attempts_path = root / "attempts.jsonl"
    if attempts_path.exists():
        out["attempts"] = len(load_attempts_jsonl(attempts_path))
    return out
