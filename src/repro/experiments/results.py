"""Tabular result container for sweeps."""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from repro.experiments.report import format_table

__all__ = ["ResultTable"]


class ResultTable:
    """An ordered list of result rows (dicts) with rendering helpers."""

    def __init__(self, columns: Sequence[str]):
        if not columns:
            raise ValueError("at least one column required")
        self.columns = list(columns)
        self.rows: list[dict[str, Any]] = []

    def add(self, **values: Any) -> None:
        missing = set(self.columns) - set(values)
        if missing:
            raise ValueError(f"missing columns: {sorted(missing)}")
        self.rows.append({column: values[column] for column in self.columns})

    def __len__(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> list[Any]:
        if name not in self.columns:
            raise KeyError(name)
        return [row[name] for row in self.rows]

    def where(self, predicate: Callable[[dict[str, Any]], bool]) -> "ResultTable":
        out = ResultTable(self.columns)
        out.rows = [row for row in self.rows if predicate(row)]
        return out

    def sorted_by(self, *names: str) -> "ResultTable":
        out = ResultTable(self.columns)
        out.rows = sorted(self.rows, key=lambda row: tuple(row[n] for n in names))
        return out

    def pivot(self, index: str, column: str, value: str) -> "ResultTable":
        """Wide-format view: one row per ``index``, one column per
        distinct ``column`` value (how the figure benches print series).

        Column values sort natively when comparable — numeric series
        like poll size d ∈ {2, 10} render as ``2, 10``, not the
        lexicographic ``10, 2`` — falling back to string order only for
        mixed incomparable types.
        """
        distinct = {row[column] for row in self.rows}
        try:
            column_values = sorted(distinct)
        except TypeError:
            column_values = sorted(distinct, key=str)
        out = ResultTable([index] + [str(v) for v in column_values])
        for index_value in dict.fromkeys(row[index] for row in self.rows):
            entry: dict[str, Any] = {index: index_value}
            for cv in column_values:
                matches = [
                    row[value]
                    for row in self.rows
                    if row[index] == index_value and row[column] == cv
                ]
                entry[str(cv)] = matches[0] if matches else None
            out.rows.append(entry)
        return out

    def render(self, floatfmt: str = "{:.3f}") -> str:
        body = [
            [_fmt(row[column], floatfmt) for column in self.columns]
            for row in self.rows
        ]
        return format_table(self.columns, body)

    def __str__(self) -> str:
        return self.render()


def _fmt(value: Any, floatfmt: str) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return floatfmt.format(value)
    return str(value)
