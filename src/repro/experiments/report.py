"""Plain-text rendering of tables, series, and line charts (bench output)."""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

__all__ = [
    "ascii_chart",
    "format_table",
    "format_series",
    "staleness_response_table",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[str]]) -> str:
    """Aligned monospace table with a header rule."""
    headers = [str(h) for h in headers]
    str_rows = [[str(cell) for cell in row] for row in rows]
    for i, row in enumerate(str_rows):
        if len(row) != len(headers):
            raise ValueError(f"row {i} has {len(row)} cells, expected {len(headers)}")
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in str_rows)) if str_rows else len(headers[c])
        for c in range(len(headers))
    ]
    def line(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(width) for cell, width in zip(cells, widths))

    rule = "  ".join("-" * width for width in widths)
    return "\n".join([line(headers), rule] + [line(r) for r in str_rows])


def format_series(
    x_label: str,
    x_values: Sequence,
    series: dict[str, Sequence[float]],
    value_fmt: str = "{:.2f}",
) -> str:
    """One row per x value, one column per named series (figure panels)."""
    headers = [x_label] + list(series)
    rows = []
    for i, x in enumerate(x_values):
        row = [str(x)]
        for name in series:
            value = series[name][i]
            row.append("-" if value is None else value_fmt.format(value))
        rows.append(row)
    return format_table(headers, rows)


def staleness_response_table(
    staleness: Sequence[float],
    response_times: Sequence[float],
    n_bins: int = 5,
) -> str:
    """Response time as a function of decision-information age.

    Buckets requests by the *staleness* of the load index their dispatch
    decision used (telemetry spans provide both arrays, aligned), then
    summarizes response time per bucket — the per-trace analogue of the
    attained-service-vs-staleness curves in Hellemans & Van Houdt
    (arXiv:2011.08250). Buckets are staleness quantiles so each row
    carries comparable sample mass; requests whose policy attached no
    decision annotation (random, round-robin, ...) land in a separate
    ``(no info)`` row. Rows with no samples are omitted.
    """
    if n_bins < 1:
        raise ValueError(f"n_bins must be >= 1, got {n_bins}")
    staleness = np.asarray(staleness, dtype=np.float64)
    response_times = np.asarray(response_times, dtype=np.float64)
    if staleness.shape != response_times.shape:
        raise ValueError("staleness and response_times must be aligned")
    measured = np.isfinite(response_times)
    known = measured & np.isfinite(staleness)
    headers = ["staleness", "n", "mean stale (ms)", "mean resp (ms)", "p95 resp (ms)"]

    def row(label: str, stale: np.ndarray, resp: np.ndarray) -> list[str]:
        return [
            label,
            str(resp.size),
            f"{stale.mean() * 1e3:.3f}" if stale.size and np.isfinite(stale).all() else "-",
            f"{resp.mean() * 1e3:.3f}",
            f"{np.percentile(resp, 95) * 1e3:.3f}",
        ]

    rows = []
    if known.any():
        stale = staleness[known]
        resp = response_times[known]
        edges = np.unique(np.quantile(stale, np.linspace(0.0, 1.0, n_bins + 1)))
        if edges.size == 1:  # constant staleness -> a single bucket
            rows.append(row(f"{edges[0] * 1e3:.3f}ms", stale, resp))
        else:
            for lo, hi in zip(edges[:-1], edges[1:]):
                mask = (stale >= lo) & ((stale < hi) | (hi == edges[-1]) & (stale <= hi))
                if not mask.any():
                    continue
                rows.append(
                    row(f"[{lo * 1e3:.3f}, {hi * 1e3:.3f}]ms", stale[mask], resp[mask])
                )
    no_info = measured & ~np.isfinite(staleness)
    if no_info.any():
        rows.append(
            row("(no info)", np.array([]), response_times[no_info])
        )
    if not rows:
        return "no measured requests with telemetry spans"
    return format_table(headers, rows)


_MARKERS = "ox+*#@%&"


def ascii_chart(
    x_values: Sequence[float],
    series: dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    logy: bool = False,
    y_label: str = "",
) -> str:
    """A monospace line chart: one marker per series, legend below.

    ``x_values`` are mapped to columns by *rank* (even spacing), which
    suits the paper's sweeps (load levels, log-spaced intervals).
    ``logy=True`` plots log10 of the values — right for the
    order-of-magnitude spreads in Figures 3/4/6.
    """
    if not series:
        raise ValueError("at least one series required")
    if width < 8 or height < 4:
        raise ValueError("chart too small")
    n_points = len(x_values)
    if n_points < 2:
        raise ValueError("need at least 2 x values")
    for name, values in series.items():
        if len(values) != n_points:
            raise ValueError(f"series {name!r} length != len(x_values)")

    def transform(v: float) -> float:
        if logy:
            if v <= 0:
                raise ValueError("logy requires positive values")
            return math.log10(v)
        return v

    flat = [
        transform(v)
        for values in series.values()
        for v in values
        if v is not None
    ]
    lo, hi = min(flat), max(flat)
    if hi == lo:
        hi = lo + 1.0
    grid = [[" "] * width for _ in range(height)]

    def cell(rank: int, value: Optional[float]) -> Optional[tuple[int, int]]:
        if value is None:
            return None
        col = round(rank * (width - 1) / (n_points - 1))
        frac = (transform(value) - lo) / (hi - lo)
        row = height - 1 - round(frac * (height - 1))
        return row, col

    for index, (name, values) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        for rank, value in enumerate(values):
            pos = cell(rank, value)
            if pos is not None:
                row, col = pos
                grid[row][col] = marker

    def y_tick(row: int) -> str:
        frac = (height - 1 - row) / (height - 1)
        value = lo + frac * (hi - lo)
        if logy:
            value = 10**value
        return f"{value:10.3g} |"

    lines = []
    for row in range(height):
        prefix = y_tick(row) if row in (0, height // 2, height - 1) else " " * 10 + " |"
        lines.append(prefix + "".join(grid[row]))
    lines.append(" " * 11 + "+" + "-" * width)
    x_axis = f"{x_values[0]!s:<{width // 2}}{x_values[-1]!s:>{width // 2}}"
    lines.append(" " * 12 + x_axis)
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]}={name}" for i, name in enumerate(series)
    )
    suffix = f"   [log y]" if logy else ""
    lines.append(f"  {y_label}  {legend}{suffix}".rstrip())
    return "\n".join(lines)
