"""Drivers regenerating every table and figure of the paper.

Each driver returns a :class:`FigureData` whose ``table`` holds the
series the paper plots and whose ``render()`` prints them. The
benchmarks call these with default (publication) sizes; tests call them
with small ``n_requests`` for speed — the *shape* claims are asserted
in ``tests/experiments/`` and ``benchmarks/``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np

from repro.analysis.inaccuracy import (
    eq1_upperbound,
    fifo_queue_length_steps,
    measure_inaccuracy,
)
from repro.experiments.config import SimulationConfig
from repro.experiments.results import ResultTable
from repro.experiments.runner import (
    SimulationResult,
    full_load_rho_for,
    parallel_sweep,
    run_simulation,
)
from repro.prototype.profiling import PollProfile, profile_poll_delays
from repro.sim.rng import RngHub
from repro.workload.synthesis import (
    FINE_GRAIN_SPEC,
    MEDIUM_GRAIN_SPEC,
    synthesize_trace,
)
from repro.workload.workloads import make_workload

__all__ = [
    "FigureData",
    "PAPER_WORKLOADS",
    "chaos_resilience",
    "figure2_inaccuracy",
    "figure3_broadcast",
    "figure4_pollsize",
    "figure6_pollsize",
    "message_scaling_section24",
    "overload_goodput",
    "poll_profile_section32",
    "resilience_comparison",
    "table1_traces",
    "table2_discard",
]

#: the paper's three evaluation workloads, in its panel order (A, B, C)
PAPER_WORKLOADS = ("medium_grain", "poisson_exp", "fine_grain")


@dataclass
class FigureData:
    """A regenerated table/figure: identifying name, data, and extras."""

    name: str
    table: ResultTable
    extras: dict[str, Any] = field(default_factory=dict)

    def render(self) -> str:
        return f"== {self.name} ==\n{self.table.render()}"


# ----------------------------------------------------------------------
# Table 1
# ----------------------------------------------------------------------

def table1_traces(n: Optional[int] = None, seed: int = 0) -> FigureData:
    """Table 1: statistics of the (synthesized) evaluation traces."""
    hub = RngHub(seed)
    table = ResultTable(
        [
            "workload",
            "accesses",
            "arrival_mean_ms",
            "arrival_std_ms",
            "service_mean_ms",
            "service_std_ms",
        ]
    )
    for spec in (MEDIUM_GRAIN_SPEC, FINE_GRAIN_SPEC):
        trace = synthesize_trace(spec, n=n, rng=hub.stream(f"table1.{spec.name}"))
        stats = trace.stats()
        table.add(
            workload=spec.name,
            accesses=stats.n_accesses,
            arrival_mean_ms=stats.arrival_interval_mean * 1e3,
            arrival_std_ms=stats.arrival_interval_std * 1e3,
            service_mean_ms=stats.service_time_mean * 1e3,
            service_std_ms=stats.service_time_std * 1e3,
        )
    return FigureData(
        "Table 1: trace statistics (synthesized to the published moments)",
        table,
        extras={"specs": (MEDIUM_GRAIN_SPEC, FINE_GRAIN_SPEC)},
    )


# ----------------------------------------------------------------------
# Figure 2
# ----------------------------------------------------------------------

def figure2_inaccuracy(
    loads: Sequence[float] = (0.9, 0.5),
    workloads: Sequence[str] = PAPER_WORKLOADS,
    delays_normalized: Sequence[float] = (0.0, 0.5, 1.0, 2.0, 5.0, 10.0),
    n_requests: int = 300_000,
    n_samples: int = 30_000,
    seed: int = 0,
) -> FigureData:
    """Figure 2: load-index inaccuracy vs. dissemination delay, 1 server.

    ``delays_normalized`` are in units of the workload's mean service
    time (the paper's x-axis). The Poisson/Exp upper bound (Eq. 1) is
    attached per load level.
    """
    hub = RngHub(seed)
    delays_normalized = np.asarray(delays_normalized, dtype=np.float64)
    table = ResultTable(["load", "workload", "delay_normalized", "inaccuracy"])
    for load in loads:
        for name in workloads:
            workload = make_workload(name)
            rng = hub.fork(f"fig2.{name}.{load}")
            gaps, services = workload.generate(rng.stream("workload"), n_requests)
            mean_service = float(services.mean())
            gaps = gaps * (mean_service / load / float(gaps.mean()))
            arrivals = np.cumsum(gaps)
            times, queue = fifo_queue_length_steps(arrivals, services)
            delays = delays_normalized * mean_service
            values = measure_inaccuracy(
                times, queue, delays, rng.stream("sampling"), n_samples=n_samples
            )
            for delay_norm, value in zip(delays_normalized, values):
                table.add(
                    load=load,
                    workload=workload.name,
                    delay_normalized=float(delay_norm),
                    inaccuracy=float(value),
                )
    return FigureData(
        "Figure 2: load-index inaccuracy vs delay (1 server)",
        table,
        extras={"upperbound": {load: eq1_upperbound(load) for load in loads}},
    )


# ----------------------------------------------------------------------
# Figure 3
# ----------------------------------------------------------------------

def figure3_broadcast(
    intervals: Sequence[float] = (0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0),
    loads: Sequence[float] = (0.9, 0.5),
    workloads: Sequence[str] = PAPER_WORKLOADS,
    n_requests: int = 20_000,
    n_servers: int = 16,
    seed: int = 0,
    parallel: bool = True,
    max_workers: Optional[int] = None,
    cache=None,
    engine: Optional[str] = None,
) -> FigureData:
    """Figure 3: broadcast policy, response time normalized to IDEAL.

    16 servers; Poisson/Exp uses the paper's 50 ms mean service time.
    ``cache``/``engine`` pass through to :func:`parallel_sweep`.
    """
    configs: list[SimulationConfig] = []
    keys: list[tuple] = []
    for load in loads:
        for name in workloads:
            base = SimulationConfig(
                workload=name,
                load=load,
                n_servers=n_servers,
                n_requests=n_requests,
                seed=seed,
                model="simulation",
            )
            configs.append(base.with_updates(policy="ideal"))
            keys.append((load, name, "ideal"))
            for interval in intervals:
                configs.append(
                    base.with_updates(
                        policy="broadcast",
                        policy_params={"mean_interval": float(interval)},
                    )
                )
                keys.append((load, name, interval))
    results = parallel_sweep(
        configs, max_workers=max_workers, parallel=parallel, cache=cache, engine=engine
    )
    by_key = dict(zip(keys, results))
    table = ResultTable(
        ["load", "workload", "interval_ms", "response_ms", "normalized_to_ideal"]
    )
    for load in loads:
        for name in workloads:
            ideal = by_key[(load, name, "ideal")]
            for interval in intervals:
                result = by_key[(load, name, interval)]
                table.add(
                    load=load,
                    workload=name,
                    interval_ms=float(interval) * 1e3,
                    response_ms=result.mean_response_time_ms,
                    normalized_to_ideal=result.mean_response_time
                    / ideal.mean_response_time,
                )
    return FigureData(
        "Figure 3: impact of broadcast frequency (16 servers)",
        table,
        extras={"ideal": {(l, w): by_key[(l, w, "ideal")] for l in loads for w in workloads}},
    )


# ----------------------------------------------------------------------
# Figures 4 and 6
# ----------------------------------------------------------------------

def figure4_pollsize(
    loads: Sequence[float] = (0.5, 0.6, 0.7, 0.8, 0.9),
    workloads: Sequence[str] = PAPER_WORKLOADS,
    poll_sizes: Sequence[int] = (2, 3, 4, 8),
    n_requests: int = 20_000,
    n_servers: int = 16,
    seed: int = 0,
    model: str = "simulation",
    parallel: bool = True,
    max_workers: Optional[int] = None,
    cache=None,
    engine: Optional[str] = None,
) -> FigureData:
    """Figure 4 (simulation) / Figure 6 (prototype): impact of poll size.

    Policies: random, polling with each poll size, and the ideal
    baseline — the free oracle in the simulation model, the centralized
    load-index manager in the prototype model (exactly as in the paper).
    """
    ideal_policy = "ideal" if model == "simulation" else "manager"
    policy_specs: list[tuple[str, str, dict]] = [("random", "random", {})]
    policy_specs += [
        (f"poll-{d}", "polling", {"poll_size": int(d)}) for d in poll_sizes
    ]
    policy_specs.append(("ideal", ideal_policy, {}))

    configs: list[SimulationConfig] = []
    keys: list[tuple] = []
    for name in workloads:
        base = SimulationConfig(
            workload=name,
            n_servers=n_servers,
            n_requests=n_requests,
            seed=seed,
            model=model,
        )
        if model == "prototype":
            base = base.with_updates(full_load_rho=full_load_rho_for(base))
        for load in loads:
            for label, policy, params in policy_specs:
                configs.append(
                    base.with_updates(load=load, policy=policy, policy_params=params)
                )
                keys.append((name, load, label))
    results = parallel_sweep(
        configs, max_workers=max_workers, parallel=parallel, cache=cache, engine=engine
    )
    table = ResultTable(["workload", "load", "policy", "response_ms", "poll_ms"])
    for key, result in zip(keys, results):
        name, load, label = key
        table.add(
            workload=name,
            load=load,
            policy=label,
            response_ms=result.mean_response_time_ms,
            poll_ms=result.mean_poll_time_ms,
        )
    figure = "Figure 4 (simulation)" if model == "simulation" else "Figure 6 (prototype)"
    return FigureData(
        f"{figure}: impact of poll size ({n_servers} servers)",
        table,
        extras={"results": dict(zip(keys, results)), "model": model},
    )


def figure6_pollsize(**kwargs) -> FigureData:
    """Figure 6: the poll-size sweep on the prototype-fidelity model."""
    kwargs.setdefault("model", "prototype")
    return figure4_pollsize(**kwargs)


# ----------------------------------------------------------------------
# Table 2
# ----------------------------------------------------------------------

def table2_discard(
    workloads: Sequence[str] = PAPER_WORKLOADS,
    load: float = 0.9,
    poll_size: int = 3,
    n_requests: int = 20_000,
    n_servers: int = 16,
    seed: int = 0,
    parallel: bool = True,
    max_workers: Optional[int] = None,
    cache=None,
    engine: Optional[str] = None,
) -> FigureData:
    """Table 2: improvement of discarding slow-responding polls.

    Prototype model, poll size 3, servers 90% busy. Reports, per
    workload: original vs. optimized mean response time and mean polling
    time, the overall improvement, and the improvement excluding polling
    time (the paper's second column — isolating the stale-information
    effect from the raw polling-time saving).
    """
    configs: list[SimulationConfig] = []
    keys: list[tuple] = []
    for name in workloads:
        base = SimulationConfig(
            workload=name,
            load=load,
            n_servers=n_servers,
            n_requests=n_requests,
            seed=seed,
            model="prototype",
        )
        base = base.with_updates(full_load_rho=full_load_rho_for(base))
        configs.append(
            base.with_updates(policy="polling", policy_params={"poll_size": poll_size})
        )
        keys.append((name, "original"))
        configs.append(
            base.with_updates(
                policy="polling",
                policy_params={"poll_size": poll_size, "discard_slow": True},
            )
        )
        keys.append((name, "optimized"))
    results = parallel_sweep(
        configs, max_workers=max_workers, parallel=parallel, cache=cache, engine=engine
    )
    by_key = dict(zip(keys, results))
    table = ResultTable(
        [
            "workload",
            "original_ms",
            "optimized_ms",
            "improvement",
            "orig_poll_ms",
            "opt_poll_ms",
            "improvement_excl_polling",
        ]
    )
    for name in workloads:
        original = by_key[(name, "original")]
        optimized = by_key[(name, "optimized")]
        improvement = 1.0 - optimized.mean_response_time / original.mean_response_time
        excl_orig = original.mean_response_time - original.mean_poll_time
        excl_opt = optimized.mean_response_time - optimized.mean_poll_time
        table.add(
            workload=name,
            original_ms=original.mean_response_time_ms,
            optimized_ms=optimized.mean_response_time_ms,
            improvement=improvement,
            orig_poll_ms=original.mean_poll_time_ms,
            opt_poll_ms=optimized.mean_poll_time_ms,
            improvement_excl_polling=1.0 - excl_opt / excl_orig,
        )
    return FigureData(
        f"Table 2: discarding slow-responding polls (d={poll_size}, {load:.0%} busy)",
        table,
        extras={"results": by_key},
    )


# ----------------------------------------------------------------------
# §3.2 poll profile and §2.4 message scaling
# ----------------------------------------------------------------------

def poll_profile_section32(
    workload: str = "fine_grain",
    load: float = 0.9,
    poll_size: int = 3,
    n_requests: int = 20_000,
    n_servers: int = 16,
    seed: int = 0,
) -> tuple[PollProfile, SimulationResult]:
    """§3.2 profile: fraction of polls slower than 10 ms / 20 ms."""
    from repro.experiments.runner import build_cluster

    config = SimulationConfig(
        workload=workload,
        load=load,
        policy="polling",
        policy_params={"poll_size": poll_size},
        n_servers=n_servers,
        n_requests=n_requests,
        seed=seed,
        model="prototype",
    )
    config = config.with_updates(full_load_rho=full_load_rho_for(config))
    cluster, nominal_rho = build_cluster(config)
    tap = profile_poll_delays(cluster)
    metrics = cluster.run()
    summary = metrics.summary(config.warmup_fraction)
    result = SimulationResult(
        config=config,
        mean_response_time=summary["mean_response_time"],
        p50_response_time=summary["p50_response_time"],
        p90_response_time=summary["p90_response_time"],
        p99_response_time=summary["p99_response_time"],
        mean_poll_time=summary["mean_poll_time"],
        n_measured=summary["n_measured"],
        n_failed=summary["n_failed"],
        nominal_rho=nominal_rho,
        wall_seconds=0.0,
        events_executed=cluster.sim.events_executed,
    )
    return tap.profile(), result


def chaos_resilience(
    n_requests: int = 6_000,
    n_servers: int = 16,
    seed: int = 0,
    parallel: bool = True,
    max_workers: Optional[int] = None,
    cache=None,
    engine: Optional[str] = None,
    archive: Optional[str] = None,
    verify: bool = False,
) -> FigureData:
    """Chaos campaign: policy resilience under scaled fault intensity.

    Not a paper figure — this quantifies the §3.1 robustness claim by
    degrading each policy with message loss/duplication/jitter,
    stragglers, a partition, and a crash storm (see
    :func:`repro.experiments.chaos.chaos_campaign`).
    """
    from repro.experiments.chaos import chaos_campaign

    report = chaos_campaign(
        n_requests=n_requests,
        n_servers=n_servers,
        seed=seed,
        parallel=parallel,
        max_workers=max_workers,
        cache=cache,
        engine=engine,
        archive=archive,
        verify=verify,
    )
    return FigureData(
        "Chaos campaign: resilience under scaled fault intensity",
        report.table,
        extras={"report": report},
    )


def resilience_comparison(
    n_requests: int = 6_000,
    n_servers: int = 16,
    seed: int = 0,
    intensities: Sequence[float] = (0.0, 1.0),
    parallel: bool = True,
    max_workers: Optional[int] = None,
    cache=None,
    engine: Optional[str] = None,
    archive: Optional[str] = None,
    verify: bool = False,
) -> FigureData:
    """Naive vs hardened: the reliability layer under identical faults.

    Runs the chaos grid twice — once with the naive timeout/retry
    lifecycle, once with :func:`repro.experiments.chaos.
    hardened_reliability_params` (hedging + circuit breakers) — under
    the exact same fault schedules, and reports the per-cell deltas
    (DESIGN.md §11, EXPERIMENTS.md naive-vs-hardened section).
    """
    from repro.experiments.chaos import NAIVE_VS_HARDENED, chaos_campaign

    report = chaos_campaign(
        intensities=intensities,
        n_requests=n_requests,
        n_servers=n_servers,
        seed=seed,
        reliability_modes=NAIVE_VS_HARDENED,
        parallel=parallel,
        max_workers=max_workers,
        cache=cache,
        engine=engine,
        archive=archive,
        verify=verify,
    )
    return FigureData(
        "Reliability layer: naive vs hardened under identical fault schedules",
        report.table,
        extras={"report": report, "comparison": report.mode_comparison()},
    )


def overload_goodput(
    n_requests: int = 4_000,
    n_servers: int = 16,
    seed: int = 0,
    offered_loads: Optional[Sequence[float]] = None,
    parallel: bool = True,
    max_workers: Optional[int] = None,
    cache=None,
    engine: Optional[str] = None,
    archive: Optional[str] = None,
    verify: bool = False,
) -> FigureData:
    """Overload campaign: goodput past saturation, static vs adaptive.

    Not a paper figure — the paper puts admission control out of scope
    (§2), but its fine-grain services face exactly the bursty overload
    this quantifies. Runs the policy × offered-load grid twice — the
    naive static-bound cluster and the overload-control subsystem
    (:mod:`repro.cluster.overload`) — under identical MMPP arrival
    schedules, and reports goodput, p95-of-successes, and shed fraction
    per cell (DESIGN.md §12, EXPERIMENTS.md goodput-under-overload
    section).
    """
    from repro.experiments.overload import DEFAULT_OFFERED_LOADS, overload_campaign

    report = overload_campaign(
        offered_loads=(
            DEFAULT_OFFERED_LOADS if offered_loads is None else offered_loads
        ),
        n_requests=n_requests,
        n_servers=n_servers,
        seed=seed,
        parallel=parallel,
        max_workers=max_workers,
        cache=cache,
        engine=engine,
        archive=archive,
        verify=verify,
    )
    return FigureData(
        "Overload control: goodput past saturation, static vs adaptive",
        report.table,
        extras={"report": report, "comparison": report.mode_comparison()},
    )


def autoscale_efficiency(
    n_requests: int = 4_000,
    n_servers: int = 16,
    seed: int = 0,
    offered_loads: Optional[Sequence[float]] = None,
    quick: bool = False,
    parallel: bool = True,
    max_workers: Optional[int] = None,
    cache=None,
    engine: Optional[str] = None,
    archive: Optional[str] = None,
    verify: bool = False,
) -> FigureData:
    """Autoscale campaign: goodput vs provisioning cost behind a
    fault-tolerant dispatcher tier.

    Runs the policy × offered-load × dispatcher-fault grid twice — a
    statically provisioned worst-case pool and the closed-loop
    autoscaler (:mod:`repro.cluster.autoscaler`), both behind the
    failover dispatcher tier (:mod:`repro.cluster.dispatcher`) — under
    identical MMPP arrival schedules, and reports goodput, mean active
    pool size, and goodput-per-provisioned-server per cell (DESIGN.md
    §16, EXPERIMENTS.md goodput-vs-provisioning-cost section).
    """
    from repro.experiments.autoscale import (
        DEFAULT_AUTOSCALE_LOADS,
        autoscale_campaign,
    )

    report = autoscale_campaign(
        offered_loads=(
            DEFAULT_AUTOSCALE_LOADS if offered_loads is None else offered_loads
        ),
        n_requests=n_requests,
        n_servers=n_servers,
        seed=seed,
        quick=quick,
        parallel=parallel,
        max_workers=max_workers,
        cache=cache,
        engine=engine,
        archive=archive,
        verify=verify,
    )
    return FigureData(
        "Autoscaling: goodput vs provisioning cost, static vs closed-loop",
        report.table,
        extras={"report": report, "comparison": report.mode_comparison()},
    )


def message_scaling_section24(
    workload: str = "poisson_exp",
    load: float = 0.9,
    client_counts: Sequence[int] = (2, 4, 6),
    broadcast_interval: float = 0.05,
    poll_size: int = 2,
    n_requests: int = 10_000,
    n_servers: int = 16,
    seed: int = 0,
    parallel: bool = True,
    cache=None,
    engine: Optional[str] = None,
) -> FigureData:
    """§2.4: messages per request — broadcast scales with the number of
    clients (fan-out), polling does not."""
    configs: list[SimulationConfig] = []
    keys: list[tuple] = []
    for n_clients in client_counts:
        base = SimulationConfig(
            workload=workload,
            load=load,
            n_servers=n_servers,
            n_clients=int(n_clients),
            n_requests=n_requests,
            seed=seed,
        )
        configs.append(
            base.with_updates(
                policy="broadcast", policy_params={"mean_interval": broadcast_interval}
            )
        )
        keys.append((n_clients, "broadcast"))
        configs.append(
            base.with_updates(policy="polling", policy_params={"poll_size": poll_size})
        )
        keys.append((n_clients, "polling"))
    results = parallel_sweep(configs, parallel=parallel, cache=cache, engine=engine)
    table = ResultTable(
        ["n_clients", "policy", "control_messages_per_request", "response_ms"]
    )
    for key, result in zip(keys, results):
        n_clients, policy = key
        counts = result.message_counts
        control = sum(
            counts.get(kind, 0)
            for kind in ("broadcast", "poll", "poll_reply", "publish")
        )
        table.add(
            n_clients=n_clients,
            policy=policy,
            control_messages_per_request=control / result.config.n_requests,
            response_ms=result.mean_response_time_ms,
        )
    return FigureData(
        "§2.4: control-message scaling (broadcast vs polling)",
        table,
        extras={"broadcast_interval": broadcast_interval, "poll_size": poll_size},
    )
