"""Warm, reusable worker pool for running many sweeps in one process.

``parallel_sweep`` spins up a fresh ``ProcessPoolExecutor`` per call —
fine for one sweep, wasteful for a driver that runs many (``make
figures``, replication studies, parameter searches): every call pays
worker spawn + module import, and every worker rediscovers the
full-load calibrations the parent already computed.

:class:`SweepExecutor` keeps one pool alive across sweeps:

- workers are spawned once and reused, with the parent's
  ``_CALIBRATION_CACHE`` snapshot pre-seeded into each worker by the
  pool initializer (so even ad-hoc prototype configs never re-bisect);
- chunksize is auto-tuned per sweep from the sweep size
  (:func:`~repro.experiments.runner.auto_chunksize`);
- results stream back in input order as chunks complete, with an
  optional per-config ``progress`` callback and per-sweep wall-time
  accounting (:meth:`SweepExecutor.stats`);
- an optional :class:`~repro.experiments.cache.ResultCache` short-cuts
  configs already simulated and persists fresh ones, exactly like
  ``parallel_sweep(cache=...)``.

Determinism is unaffected: each config carries its own seed, so results
are bit-identical whether they come from ``run_simulation``,
``parallel_sweep``, or any ``SweepExecutor``.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from repro.experiments.cache import ResultCache
from repro.experiments.config import SimulationConfig
from repro.experiments.runner import (
    _CALIBRATION_CACHE,
    SimulationResult,
    auto_chunksize,
    prepare_configs,
    run_simulation,
)

__all__ = ["SweepExecutor", "SweepStats"]

#: progress callback signature: (configs_done, configs_total, result)
ProgressFn = Callable[[int, int, SimulationResult], None]


def _seed_worker(calibrations: dict) -> None:
    """Pool initializer: pre-load the worker's calibration cache."""
    _CALIBRATION_CACHE.update(calibrations)


@dataclass
class SweepStats:
    """Cumulative accounting across an executor's lifetime."""

    sweeps: int = 0
    configs_run: int = 0
    cache_hits: int = 0
    wall_seconds: float = 0.0
    sim_seconds: float = 0.0

    @property
    def speedup(self) -> float:
        """Aggregate simulated-seconds / wall-seconds (pool parallelism)."""
        return self.sim_seconds / self.wall_seconds if self.wall_seconds else 0.0


class SweepExecutor:
    """A persistent process pool that runs config sweeps.

    Parameters
    ----------
    max_workers:
        Pool size (default: all cores, per ``ProcessPoolExecutor``).
    cache:
        Optional :class:`ResultCache` consulted before simulating and
        written back after; per-sweep ``cache=`` overrides this.
    engine:
        Optional event-queue engine override applied to every config
        (``"heap"``/``"calendar"``).

    Use as a context manager, or call :meth:`close` when done. The pool
    is created lazily on the first sweep, so constructing an executor
    "just in case" costs nothing.
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        engine: Optional[str] = None,
    ):
        self.max_workers = max_workers
        self.cache = cache
        self.engine = engine
        self.stats = SweepStats()
        self._pool: Optional[ProcessPoolExecutor] = None
        self._seeded_calibrations = 0

    # ------------------------------------------------------------------
    # pool lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            # Snapshot the parent's calibrations into every worker. The
            # pool outlives this sweep, so later-discovered calibrations
            # reach workers via prepared configs (full_load_rho set),
            # not via re-seeding.
            self._seeded_calibrations = len(_CALIBRATION_CACHE)
            self._pool = ProcessPoolExecutor(
                max_workers=self.max_workers,
                initializer=_seed_worker,
                initargs=(dict(_CALIBRATION_CACHE),),
            )
        return self._pool

    @property
    def warm(self) -> bool:
        """True once the pool exists (first sweep already paid spawn)."""
        return self._pool is not None

    def close(self) -> None:
        """Shut the pool down; the executor can be reused (re-spawns)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------
    # sweeping
    # ------------------------------------------------------------------
    def sweep(
        self,
        configs: Sequence[SimulationConfig],
        cache: Optional[ResultCache] = None,
        progress: Optional[ProgressFn] = None,
    ) -> list[SimulationResult]:
        """Run ``configs`` on the warm pool; results in input order.

        ``progress(done, total, result)`` fires once per config as its
        result lands (cache hits first, then fresh results in order).
        """
        started = time.perf_counter()
        cache = cache if cache is not None else self.cache
        configs = list(configs)
        if self.engine is not None:
            configs = [
                c if c.engine == self.engine else c.with_updates(engine=self.engine)
                for c in configs
            ]
        configs = prepare_configs(configs)
        total = len(configs)
        done = 0

        slots: list[Optional[SimulationResult]] = [None] * total
        todo_indices = list(range(total))
        if cache is not None:
            todo_indices = []
            for i, config in enumerate(configs):
                hit = cache.get(config)
                if hit is not None:
                    slots[i] = hit
                    self.stats.cache_hits += 1
                    done += 1
                    if progress is not None:
                        progress(done, total, hit)
                else:
                    todo_indices.append(i)

        todo = [configs[i] for i in todo_indices]
        if todo:
            if len(todo) == 1:
                fresh = iter([run_simulation(todo[0])])
            else:
                pool = self._ensure_pool()
                fresh = pool.map(
                    run_simulation,
                    todo,
                    chunksize=auto_chunksize(len(todo), self.max_workers),
                )
            # pool.map yields in order as chunks complete — stream each
            # result into its slot instead of waiting for the sweep.
            for i, result in zip(todo_indices, fresh):
                slots[i] = result
                if cache is not None:
                    cache.put(result)
                self.stats.configs_run += 1
                self.stats.sim_seconds += result.wall_seconds
                done += 1
                if progress is not None:
                    progress(done, total, result)

        self.stats.sweeps += 1
        self.stats.wall_seconds += time.perf_counter() - started
        return slots  # type: ignore[return-value]  # every slot is filled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "warm" if self.warm else "cold"
        return (
            f"<SweepExecutor {state} workers={self.max_workers} "
            f"sweeps={self.stats.sweeps} run={self.stats.configs_run} "
            f"hits={self.stats.cache_hits}>"
        )
