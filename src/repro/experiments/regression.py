"""Behavioral regression checks against archived results.

Simulation refactors are dangerous precisely because the test suite can
stay green while the *numbers* drift. This module provides:

- :func:`canonical_configs` — a small, fixed sweep covering every
  policy family and both models;
- :func:`compare_to_baseline` — run the sweep and compare each mean
  response time to an archived JSON baseline within a relative
  tolerance, reporting per-config drift.

The committed baseline lives at ``benchmarks/baselines/canonical.json``
and is checked by ``tests/integration/test_regression_baseline.py``.
Exact equality is deliberately not required: changes that legitimately
alter random-number consumption (e.g. a different sampling algorithm
with the same distribution) shift individual runs; the tolerance bounds
*behavioral* drift instead.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Sequence

from repro.experiments.config import SimulationConfig
from repro.experiments.io import load_results, save_results
from repro.experiments.runner import SimulationResult, parallel_sweep

__all__ = [
    "BaselineComparison",
    "canonical_configs",
    "compare_to_baseline",
    "write_baseline",
]

#: default location of the committed baseline archive
DEFAULT_BASELINE = (
    Path(__file__).resolve().parents[3] / "benchmarks" / "baselines" / "canonical.json"
)


def canonical_configs(n_requests: int = 4000) -> list[SimulationConfig]:
    """A fixed sweep covering every policy family and both models."""
    base = SimulationConfig(
        workload="poisson_exp", load=0.9, n_servers=16, n_requests=n_requests,
        seed=20260706,
    )
    configs = [
        base.with_updates(policy="random", label="random"),
        base.with_updates(policy="ideal", label="ideal"),
        base.with_updates(policy="polling", policy_params={"poll_size": 2},
                          label="poll2"),
        base.with_updates(policy="broadcast", policy_params={"mean_interval": 0.05},
                          label="broadcast50ms"),
        base.with_updates(policy="least_connections", label="least_connections"),
        base.with_updates(policy="jiq", label="jiq"),
        base.with_updates(workload="fine_grain", policy="polling",
                          policy_params={"poll_size": 3}, label="fine_poll3"),
        base.with_updates(workload="medium_grain", policy="polling",
                          policy_params={"poll_size": 2}, label="medium_poll2"),
        base.with_updates(
            workload="fine_grain", model="prototype", full_load_rho=0.99,
            policy="polling",
            policy_params={"poll_size": 3, "discard_slow": True},
            label="proto_fine_poll3_discard",
        ),
        base.with_updates(model="prototype", full_load_rho=0.92,
                          policy="manager", label="proto_manager"),
    ]
    return configs


@dataclass(frozen=True)
class BaselineComparison:
    """Outcome of one config's baseline check."""

    label: str
    baseline: float
    current: float

    @property
    def drift(self) -> float:
        """Relative drift of the current mean vs the baseline."""
        return self.current / self.baseline - 1.0

    def row(self) -> str:
        return (
            f"{self.label:<28s} baseline {self.baseline * 1e3:8.2f} ms   "
            f"current {self.current * 1e3:8.2f} ms   drift {self.drift:+7.2%}"
        )


def write_baseline(path: str | Path = DEFAULT_BASELINE,
                   n_requests: int = 4000) -> list[SimulationResult]:
    """Run the canonical sweep and archive it as the new baseline."""
    results = parallel_sweep(canonical_configs(n_requests), parallel=False)
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    save_results(results, path)
    return results


def compare_to_baseline(
    path: str | Path = DEFAULT_BASELINE,
    tolerance: float = 0.25,
    n_requests: int | None = None,
) -> list[BaselineComparison]:
    """Re-run the canonical sweep and compare to the archive.

    Raises AssertionError listing every config whose mean response time
    drifted more than ``tolerance`` (relative). ``n_requests`` defaults
    to whatever the archive was recorded with.
    """
    baseline_results = load_results(path)
    by_label = {r.config.label: r for r in baseline_results}
    requests = n_requests or baseline_results[0].config.n_requests
    current_results = parallel_sweep(canonical_configs(requests), parallel=False)
    comparisons = []
    failures = []
    for result in current_results:
        label = result.config.label
        if label not in by_label:
            failures.append(f"{label}: missing from baseline (regenerate it)")
            continue
        comparison = BaselineComparison(
            label=label,
            baseline=by_label[label].mean_response_time,
            current=result.mean_response_time,
        )
        comparisons.append(comparison)
        if abs(comparison.drift) > tolerance:
            failures.append(comparison.row())
    if failures:
        raise AssertionError(
            "behavioral drift beyond tolerance "
            f"{tolerance:.0%}:\n" + "\n".join(failures)
        )
    return comparisons
