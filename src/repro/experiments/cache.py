"""Persistent, content-addressed result cache for simulation sweeps.

Every figure/ablation bench re-simulates its whole config grid on every
invocation, even when only one point changed. This module memoizes
:class:`~repro.experiments.runner.SimulationResult`s on disk, keyed by
a stable hash of the full :class:`SimulationConfig` (which includes the
engine choice), the library version, and the archive schema version —
so a cached sweep re-run costs file reads, and any change that could
alter numbers (config field, code release, schema) is automatically a
miss.

Layout: one JSON file per result under ``<root>/<hash[:2]>/<hash>.json``,
written in the exact :mod:`repro.experiments.io` archive format (a
one-record archive), so cached entries are greppable, diffable, and
loadable with :func:`~repro.experiments.io.load_results` directly.

Writes are atomic (temp file + ``os.replace``), so a cache shared by
concurrent sweep processes never yields torn reads; the worst case is
both processes simulating the same config and one overwrite winning.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict
from pathlib import Path
from typing import Optional

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import SimulationResult

__all__ = ["ResultCache", "config_key", "default_cache_dir"]

#: environment variable overriding the default cache location
_CACHE_ENV = "REPRO_CACHE_DIR"


def default_cache_dir() -> Path:
    """Default on-disk cache root: ``$REPRO_CACHE_DIR`` or ``.repro-cache``.

    Repo-local by default so a checkout's cache travels with it and
    ``rm -rf .repro-cache`` is an obvious, safe invalidation hammer.
    """
    env = os.environ.get(_CACHE_ENV)
    return Path(env) if env else Path(".repro-cache")


def config_key(config: SimulationConfig) -> str:
    """Stable content hash identifying a config's cached result.

    Covers every ``SimulationConfig`` field (so policy/workload params,
    seed, and the ``engine`` choice all key independently) plus the
    library version and the io schema version. Canonical JSON with
    sorted keys makes the hash independent of dict insertion order.
    """
    from repro import __version__
    from repro.experiments.io import _SCHEMA_VERSION

    payload = {
        "config": asdict(config),
        "library_version": __version__,
        "schema_version": _SCHEMA_VERSION,
    }
    blob = json.dumps(payload, sort_keys=True, default=list)
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """On-disk memo table from :class:`SimulationConfig` to its result.

    Use via ``parallel_sweep(configs, cache=ResultCache(dir))`` or a
    :class:`~repro.experiments.executor.SweepExecutor`; both consult
    the cache before simulating and write back every fresh result.

    Hit/miss/write counters accumulate over the cache object's lifetime
    (``stats()``) so drivers can report how much work a sweep skipped.
    """

    def __init__(self, root: Optional[str | Path] = None):
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        self.writes = 0

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.json"

    def get(self, config: SimulationConfig) -> Optional[SimulationResult]:
        """The cached result for ``config``, or ``None`` on a miss.

        Unreadable or stale entries (hash collision, interrupted write
        predating atomic replace, config drift) count as misses.
        """
        from repro.experiments.io import load_results

        path = self._path(config_key(config))
        if not path.exists():
            self.misses += 1
            return None
        try:
            results = load_results(path)
        except (ValueError, KeyError, TypeError, json.JSONDecodeError, OSError):
            self.misses += 1
            return None
        if len(results) != 1 or results[0].config != config:
            self.misses += 1
            return None
        self.hits += 1
        return results[0]

    def put(self, result: SimulationResult) -> None:
        """Store ``result`` under its config's key (atomic overwrite)."""
        from repro.experiments.io import save_results

        path = self._path(config_key(result.config))
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_suffix(f".tmp.{os.getpid()}")
        save_results([result], tmp)
        os.replace(tmp, path)
        self.writes += 1

    def __contains__(self, config: SimulationConfig) -> bool:
        return self._path(config_key(config)).exists()

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.glob("*/*.json"))

    def clear(self) -> int:
        """Delete every cached entry; returns the number removed.

        Also sweeps ``*.tmp.*`` orphans left by a writer that died
        between writing its temp file and the atomic rename (these are
        invisible to ``__len__``/``get`` and would otherwise accumulate
        forever); orphans are not counted in the return value.
        """
        removed = 0
        if self.root.exists():
            for path in self.root.glob("*/*.json"):
                path.unlink(missing_ok=True)
                removed += 1
            for path in self.root.glob("*/*.tmp.*"):
                path.unlink(missing_ok=True)
        return removed

    def stats(self) -> dict[str, int]:
        """Lifetime counters: ``{"hits": .., "misses": .., "writes": ..}``."""
        return {"hits": self.hits, "misses": self.misses, "writes": self.writes}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<ResultCache root={str(self.root)!r} hits={self.hits} "
            f"misses={self.misses} writes={self.writes}>"
        )
