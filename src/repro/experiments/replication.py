"""Replicated runs: seed-level confidence intervals for any config.

Single simulation runs carry correlated noise (one arrival sample, one
service sample); comparing two policies on one seed can flip. This
module runs a config across independent seeds and reports a Student-t
confidence interval over the per-run means — the right error bar for
"policy A beats policy B" claims, and what the comparison helpers here
use to call a winner (or a tie).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np
from scipy import stats as sp_stats

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import SimulationResult, parallel_sweep

__all__ = ["ReplicatedResult", "replicate", "compare_policies"]


@dataclass(frozen=True)
class ReplicatedResult:
    """Mean response time across replications, with a t-interval."""

    config: SimulationConfig
    per_seed_means: tuple[float, ...]
    confidence: float

    @property
    def n_replications(self) -> int:
        return len(self.per_seed_means)

    @property
    def mean(self) -> float:
        return float(np.mean(self.per_seed_means))

    @property
    def half_width(self) -> float:
        n = self.n_replications
        if n < 2:
            return math.inf
        sem = float(np.std(self.per_seed_means, ddof=1)) / math.sqrt(n)
        t_crit = float(sp_stats.t.ppf(0.5 + self.confidence / 2.0, df=n - 1))
        return t_crit * sem

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    def overlaps(self, other: "ReplicatedResult") -> bool:
        """True when the two intervals overlap (difference not resolved)."""
        return self.low <= other.high and other.low <= self.high

    def row(self) -> str:
        return (
            f"{self.config.describe():<50s} "
            f"{self.mean * 1e3:8.2f} ms ± {self.half_width * 1e3:6.2f} "
            f"({self.confidence:.0%}, n={self.n_replications})"
        )


def replicate(
    config: SimulationConfig,
    n_replications: int = 5,
    confidence: float = 0.95,
    parallel: bool = True,
    max_workers: Optional[int] = None,
) -> ReplicatedResult:
    """Run ``config`` under ``n_replications`` derived seeds.

    Seeds are ``base_seed*1000 + i`` — disjoint substream universes via
    the RngHub derivation, deterministic for a given config.
    """
    if n_replications < 1:
        raise ValueError(f"n_replications must be >= 1, got {n_replications}")
    if not 0 < confidence < 1:
        raise ValueError(f"confidence must be in (0,1), got {confidence}")
    configs = [
        config.with_updates(seed=config.seed * 1000 + i) for i in range(n_replications)
    ]
    results = parallel_sweep(configs, parallel=parallel, max_workers=max_workers)
    return ReplicatedResult(
        config=config,
        per_seed_means=tuple(r.mean_response_time for r in results),
        confidence=confidence,
    )


def compare_policies(
    base: SimulationConfig,
    policies: Sequence[tuple[str, str, dict]],
    n_replications: int = 5,
    confidence: float = 0.95,
    parallel: bool = True,
) -> list[tuple[str, ReplicatedResult]]:
    """Replicate several policies on a common base config.

    ``policies`` is ``[(label, policy_name, policy_params), ...]``.
    Common random numbers: replication *i* of every policy shares the
    same seed, so comparisons are paired. Results are sorted by mean.
    """
    out = []
    for label, name, params in policies:
        config = base.with_updates(policy=name, policy_params=params, label=label)
        out.append(
            (label, replicate(config, n_replications, confidence, parallel=parallel))
        )
    out.sort(key=lambda item: item[1].mean)
    return out
