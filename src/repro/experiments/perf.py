"""Persistent performance trajectory: schema-versioned BENCH_*.json.

Five PRs of benches printed throughput numbers and threw them away; this
module makes the trajectory durable. Two artifact kinds share one
envelope::

    {"schema_version": 1, "kind": "engines" | "scale", ...}

- ``BENCH_engines.json`` (:func:`engine_trajectory`): events/sec and
  wall-clock for every engine x cluster size on a fixed policy — the
  microscopic view of the scheduler hot path.
- ``BENCH_scale.json`` (:func:`scale_trajectory`): requests/sec for the
  exact heap engine vs the numpy fast path at large N, the derived
  per-policy speedups, and the mean-field cross-check cells — the
  macroscopic "can we run thousands of servers" view (ROADMAP item 1).

Committed baselines live in ``benchmarks/baselines/``;
:func:`check_scale_regression` compares *speedups* (a wall-clock ratio,
so largely machine-independent) against a baseline with a relative
tolerance, which is what CI's ``scale-smoke`` step enforces.

:func:`validate_bench` accepts both this envelope and raw
pytest-benchmark output (a ``benchmarks`` list), so ``repro
validate-bench`` can gate every BENCH file the Makefile produces —
failing loudly on empty or schema-broken output instead of printing
and succeeding.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import Any, Optional, Sequence

from repro.experiments.config import SimulationConfig
from repro.experiments.runner import run_simulation

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchValidationError",
    "engine_trajectory",
    "scale_trajectory",
    "save_bench",
    "load_bench",
    "validate_bench",
    "check_scale_regression",
    "render_bench",
]

BENCH_SCHEMA_VERSION = 1

#: speedup floor the scale bench must clear on its headline policies
#: (ISSUE 6 acceptance: >= 10x requests/sec over heap at N=1000)
SCALE_SPEEDUP_FLOOR = 10.0
SCALE_FLOOR_POLICIES = ("random", "broadcast")


class BenchValidationError(ValueError):
    """A BENCH_*.json artifact is empty or schema-invalid."""


def _timed_cell(config: SimulationConfig) -> dict[str, Any]:
    """Run one config and fold it into a throughput entry."""
    started = time.perf_counter()
    result = run_simulation(config)
    wall = time.perf_counter() - started
    return {
        "engine": config.engine,
        "policy": config.policy,
        "n_servers": config.n_servers,
        "n_requests": config.n_requests,
        "wall_seconds": wall,
        "events_executed": result.events_executed,
        "events_per_sec": result.events_executed / wall,
        "requests_per_sec": config.n_requests / wall,
        "mean_response_time_ms": result.mean_response_time * 1e3,
    }


def engine_trajectory(
    sizes: Sequence[int] = (16, 100, 1000),
    base_requests: int = 20_000,
    fast_multiplier: int = 10,
    policy: str = "random",
    seed: int = 0,
    load: float = 0.9,
) -> dict[str, Any]:
    """Throughput of every engine across cluster sizes (one policy).

    Exact engines run ``base_requests``; the fast path runs
    ``fast_multiplier`` times as many so its wall-clock stays
    measurable. ``events_per_sec`` means heap/calendar *events* for the
    exact engines and batch *ticks* for the fast path — compare engines
    on ``requests_per_sec``.
    """
    entries = []
    for n_servers in sizes:
        base = SimulationConfig(
            policy=policy,
            workload="poisson_exp",
            load=load,
            n_servers=n_servers,
            n_requests=base_requests,
            seed=seed,
        )
        for engine in ("heap", "calendar"):
            entries.append(_timed_cell(base.with_updates(engine=engine)))
        entries.append(
            _timed_cell(
                base.with_updates(
                    engine="fast", n_requests=base_requests * fast_multiplier
                )
            )
        )
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": "engines",
        "policy": policy,
        "load": load,
        "seed": seed,
        "entries": entries,
    }


def scale_trajectory(
    n_servers: int = 1_000,
    heap_requests: int = 20_000,
    fast_requests: int = 200_000,
    policies: Sequence[str] = ("random", "broadcast"),
    seed: int = 0,
    load: float = 0.9,
    meanfield: bool = True,
) -> dict[str, Any]:
    """Large-N heap-vs-fast throughput plus the mean-field cross-check.

    Speedups are requests/sec ratios at identical (policy, N); the
    mean-field cells reuse :func:`repro.experiments.parity.
    meanfield_check` so the perf artifact and the validation tier can
    never drift apart.
    """
    policy_params: dict[str, dict[str, Any]] = {
        "random": {},
        "polling": {"poll_size": 2},
        "broadcast": {"mean_interval": 0.01},
        "stale_jsq": {"update_interval": 0.02},
    }
    entries = []
    speedups: dict[str, float] = {}
    for policy in policies:
        base = SimulationConfig(
            policy=policy,
            policy_params=policy_params.get(policy, {}),
            workload="poisson_exp",
            load=load,
            n_servers=n_servers,
            seed=seed,
        )
        heap_cell = _timed_cell(
            base.with_updates(engine="heap", n_requests=heap_requests)
        )
        fast_cell = _timed_cell(
            base.with_updates(engine="fast", n_requests=fast_requests)
        )
        entries += [heap_cell, fast_cell]
        speedups[policy] = (
            fast_cell["requests_per_sec"] / heap_cell["requests_per_sec"]
        )

    meanfield_cells = []
    meanfield_ok = True
    if meanfield:
        from repro.experiments.parity import meanfield_check, meanfield_suite

        report = meanfield_check(meanfield_suite(n_servers=n_servers, seed=seed))
        meanfield_ok = report.ok
        meanfield_cells = [
            {
                "policy": cell.config.policy,
                "n_servers": cell.config.n_servers,
                "load": cell.config.load,
                "predicted_ms": cell.predicted * 1e3,
                "simulated_ms": cell.simulated * 1e3,
                "rel_error": cell.rel_error,
                "tolerance": report.tolerance,
            }
            for cell in report.cells
        ]
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "kind": "scale",
        "n_servers": n_servers,
        "load": load,
        "seed": seed,
        "entries": entries,
        "speedups": speedups,
        "meanfield": meanfield_cells,
        "meanfield_ok": meanfield_ok,
    }


def save_bench(data: dict[str, Any], path: str | Path) -> Path:
    """Validate and write a bench artifact (atomic enough for CI)."""
    validate_bench(data, source=str(path))
    path = Path(path)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def load_bench(path: str | Path) -> dict[str, Any]:
    """Read and validate a bench artifact."""
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except FileNotFoundError:
        raise BenchValidationError(f"{path}: bench file does not exist") from None
    except json.JSONDecodeError as error:
        raise BenchValidationError(f"{path}: not valid JSON ({error})") from None
    validate_bench(data, source=str(path))
    return data


def _require(condition: bool, source: str, message: str) -> None:
    if not condition:
        prefix = f"{source}: " if source else ""
        raise BenchValidationError(prefix + message)


def validate_bench(data: Any, source: str = "") -> str:
    """Check a bench artifact's schema; returns its kind.

    Accepts the repo envelope (``schema_version`` + ``entries``) and raw
    pytest-benchmark files (a non-empty ``benchmarks`` list) — kind
    ``"pytest-benchmark"``. Raises :class:`BenchValidationError` on
    anything empty or malformed.
    """
    _require(isinstance(data, dict), source, f"expected a JSON object, got {type(data).__name__}")
    if "benchmarks" in data and "schema_version" not in data:
        benches = data["benchmarks"]
        _require(isinstance(benches, list), source, "'benchmarks' must be a list")
        _require(len(benches) > 0, source, "pytest-benchmark output is empty")
        for i, bench in enumerate(benches):
            stats = bench.get("stats") if isinstance(bench, dict) else None
            _require(
                isinstance(stats, dict) and "mean" in stats,
                source,
                f"benchmarks[{i}] has no stats.mean",
            )
            mean = stats["mean"]
            _require(
                isinstance(mean, (int, float)) and math.isfinite(mean) and mean > 0,
                source,
                f"benchmarks[{i}].stats.mean is not a positive finite number",
            )
        return "pytest-benchmark"

    _require("schema_version" in data, source, "missing schema_version")
    _require(
        data["schema_version"] == BENCH_SCHEMA_VERSION,
        source,
        f"schema_version {data['schema_version']!r} != {BENCH_SCHEMA_VERSION}",
    )
    kind = data.get("kind")
    _require(kind in ("engines", "scale"), source, f"unknown kind {kind!r}")
    entries = data.get("entries")
    _require(isinstance(entries, list) and len(entries) > 0, source, "entries missing or empty")
    for i, entry in enumerate(entries):
        _require(isinstance(entry, dict), source, f"entries[{i}] is not an object")
        for field in ("engine", "policy", "n_servers", "n_requests", "wall_seconds", "requests_per_sec"):
            _require(field in entry, source, f"entries[{i}] missing {field!r}")
        rate = entry["requests_per_sec"]
        _require(
            isinstance(rate, (int, float)) and math.isfinite(rate) and rate > 0,
            source,
            f"entries[{i}].requests_per_sec is not a positive finite number",
        )
    if kind == "scale":
        speedups = data.get("speedups")
        _require(
            isinstance(speedups, dict) and len(speedups) > 0,
            source,
            "scale artifact has no speedups",
        )
        for policy, speedup in speedups.items():
            _require(
                isinstance(speedup, (int, float)) and math.isfinite(speedup) and speedup > 0,
                source,
                f"speedups[{policy!r}] is not a positive finite number",
            )
    return str(kind)


def check_scale_regression(
    current: dict[str, Any],
    baseline: dict[str, Any],
    tolerance: float = 0.25,
) -> list[str]:
    """Compare a scale run against a committed baseline.

    Returns failure messages (empty = pass): a policy regresses when
    its fast-vs-heap speedup drops more than ``tolerance`` below the
    baseline's, or falls below the absolute :data:`SCALE_SPEEDUP_FLOOR`
    on the headline policies.
    """
    failures = []
    for policy, base_speedup in baseline.get("speedups", {}).items():
        speedup = current.get("speedups", {}).get(policy)
        if speedup is None:
            failures.append(f"{policy}: missing from current run (baseline {base_speedup:.1f}x)")
            continue
        floor = base_speedup * (1.0 - tolerance)
        if speedup < floor:
            failures.append(
                f"{policy}: speedup {speedup:.1f}x fell below {floor:.1f}x "
                f"(baseline {base_speedup:.1f}x - {tolerance:.0%})"
            )
    for policy in SCALE_FLOOR_POLICIES:
        speedup = current.get("speedups", {}).get(policy)
        if speedup is not None and speedup < SCALE_SPEEDUP_FLOOR:
            failures.append(
                f"{policy}: speedup {speedup:.1f}x below the absolute "
                f"{SCALE_SPEEDUP_FLOOR:.0f}x floor"
            )
    return failures


def render_bench(data: dict[str, Any]) -> str:
    """Human-readable table for either artifact kind."""
    kind = validate_bench(data)
    lines = []
    if kind == "pytest-benchmark":
        lines.append(f"pytest-benchmark output: {len(data['benchmarks'])} benches")
        for bench in data["benchmarks"]:
            lines.append(f"  {bench.get('name', '?')}: mean {bench['stats']['mean'] * 1e3:.3f}ms")
        return "\n".join(lines)
    title = "engine trajectory" if kind == "engines" else "scale trajectory"
    lines.append(
        f"== {title} (schema v{data['schema_version']}, load={data.get('load', '?'):.0%}) =="
    )
    lines.append(
        f"{'policy':<10} {'engine':<9} {'N':>6} {'requests':>9} "
        f"{'wall':>8} {'req/s':>10} {'ev/s':>11}"
    )
    for entry in data["entries"]:
        lines.append(
            f"{entry['policy']:<10} {entry['engine']:<9} {entry['n_servers']:>6} "
            f"{entry['n_requests']:>9} {entry['wall_seconds']:>7.2f}s "
            f"{entry['requests_per_sec']:>10.0f} "
            f"{entry.get('events_per_sec', float('nan')):>11.0f}"
        )
    if kind == "scale":
        speedups = ", ".join(
            f"{policy}={speedup:.1f}x" for policy, speedup in sorted(data["speedups"].items())
        )
        lines.append(f"fast-vs-heap speedups: {speedups}")
        for cell in data.get("meanfield", []):
            marker = "ok" if cell["rel_error"] <= cell["tolerance"] else "FAIL"
            lines.append(
                f"mean-field [{marker}] {cell['policy']} N={cell['n_servers']}: "
                f"sim={cell['simulated_ms']:.3f}ms pred={cell['predicted_ms']:.3f}ms "
                f"err={cell['rel_error']:.2%}"
            )
    return "\n".join(lines)
