"""Command-line interface: regenerate any paper table/figure.

Usage::

    python -m repro table1
    python -m repro fig2
    python -m repro fig3  --requests 10000
    python -m repro fig4  --requests 10000
    python -m repro fig6  --requests 10000 --seed 3
    python -m repro table2
    python -m repro profile
    python -m repro messages
    python -m repro parity
    python -m repro chaos --quick
    python -m repro resilience --quick
    python -m repro overload --quick
    python -m repro autoscale --quick
    python -m repro scenario --quick
    python -m repro scenario --spec grid.yaml --validate
    python -m repro trace --policy broadcast --policy-param mean_interval=0.1
    python -m repro drive --quick
    python -m repro serve --port 9000 --time-limit 30
    python -m repro list

Figures print the same series the paper plots; ``--requests`` trades
precision for speed (defaults are publication-sized), ``--quick`` picks
a small smoke-test size per command.

Sweep commands memoize results in a persistent on-disk cache (default
``.repro-cache/``, or ``$REPRO_CACHE_DIR``; see
:mod:`repro.experiments.cache`), so a re-run with unchanged configs
costs seconds. ``--no-cache`` bypasses it; ``--cache-dir`` relocates
it. ``--engine {heap,calendar}`` selects the event-queue implementation
(bit-identical results either way; ``parity`` proves it).
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Optional, Sequence

from repro.experiments import figures
from repro.verify import InvariantViolation

__all__ = ["main"]

#: per-command --quick request sizes (small but shape-preserving)
_QUICK_REQUESTS = {
    "fig2": 30_000,
    "fig3": 2_000,
    "fig4": 2_000,
    "fig6": 2_000,
    "table2": 3_000,
    "profile": 3_000,
    "messages": 2_000,
    "compare": 600,
    "parity": 800,
    "chaos": 600,
    "resilience": 600,
    "overload": 600,
    "autoscale": 500,
    "scenario": 400,
    # fuzz sizes its cases itself; --quick shrinks the case budget, not
    # the per-case request count (handled in _fuzz, not via --requests)
    "fuzz": 0,
    "trace": 800,
    "fastparity": 2_000,
    "scale": 6_000,
    "bench-engines": 5_000,
    "drive": 240,
}


def _parse_policy_params(pairs: Sequence[str]) -> dict:
    """``key=value`` pairs -> typed params (int, float, bool, then str)."""
    params = {}
    for pair in pairs:
        key, sep, raw = pair.partition("=")
        if not sep or not key:
            raise SystemExit(f"--policy-param expects key=value, got {pair!r}")
        value: object
        if raw.lower() in ("true", "false"):
            value = raw.lower() == "true"
        else:
            try:
                value = int(raw)
            except ValueError:
                try:
                    value = float(raw)
                except ValueError:
                    value = raw
        params[key] = value
    return params


def _sweep_kwargs(args) -> dict:
    """cache/engine keyword arguments for the sweep-driven commands."""
    return {"cache": args.result_cache, "engine": args.engine}


def _table1(args) -> str:
    return figures.table1_traces(seed=args.seed).render()


def _fig2(args) -> str:
    data = figures.figure2_inaccuracy(
        n_requests=args.requests or 300_000, seed=args.seed
    )
    bounds = ", ".join(
        f"{load:.0%}: {bound:.2f}" for load, bound in data.extras["upperbound"].items()
    )
    return data.render() + f"\nEq.1 upper bounds (Poisson/Exp): {bounds}"


def _fig3(args) -> str:
    data = figures.figure3_broadcast(
        n_requests=args.requests or 20_000, seed=args.seed,
        parallel=not args.serial, **_sweep_kwargs(args),
    )
    return data.render()


def _fig4(args) -> str:
    data = figures.figure4_pollsize(
        n_requests=args.requests or 20_000, seed=args.seed,
        model="simulation", parallel=not args.serial, **_sweep_kwargs(args),
    )
    return data.render()


def _fig6(args) -> str:
    data = figures.figure6_pollsize(
        n_requests=args.requests or 15_000, seed=args.seed,
        parallel=not args.serial, **_sweep_kwargs(args),
    )
    return data.render()


def _table2(args) -> str:
    data = figures.table2_discard(
        n_requests=args.requests or 25_000, seed=args.seed,
        parallel=not args.serial, **_sweep_kwargs(args),
    )
    return data.render()


def _profile(args) -> str:
    profile, result = figures.poll_profile_section32(
        n_requests=args.requests or 25_000, seed=args.seed
    )
    return (
        "== §3.2 poll profile (d=3, 90% load, 16 servers) ==\n"
        + profile.row()
        + "\npaper: >10ms: 8.10%   >20ms: 5.60%"
        + f"\n(nominal rho: {result.nominal_rho:.3f})"
    )


def _messages(args) -> str:
    data = figures.message_scaling_section24(
        n_requests=args.requests or 10_000, seed=args.seed,
        parallel=not args.serial, **_sweep_kwargs(args),
    )
    return data.render()


def _compare(args) -> str:
    """Race the headline policies with seed-level confidence intervals."""
    from repro.experiments import SimulationConfig, compare_policies

    base = SimulationConfig(
        workload=args.workload, load=args.load,
        n_requests=args.requests or 8_000, seed=args.seed,
        engine=args.engine or "heap",
    )
    comparison = compare_policies(
        base,
        policies=[
            ("random", "random", {}),
            ("round-robin", "round_robin", {}),
            ("least-connections", "least_connections", {}),
            ("jiq", "jiq", {}),
            ("polling d=2", "polling", {"poll_size": 2}),
            ("polling d=3 +discard", "polling",
             {"poll_size": 3, "discard_slow": True}),
            ("ideal", "ideal", {}),
        ],
        n_replications=args.replications,
        parallel=not args.serial,
    )
    lines = [
        f"policy comparison: {args.workload} at {args.load:.0%} load, "
        f"{args.replications} replications"
    ]
    lines += [result.row() for _label, result in comparison]
    return "\n".join(lines)


def _chaos(args) -> str:
    """Chaos campaign: resilience report under scaled fault intensity."""
    data = figures.chaos_resilience(
        n_requests=args.requests or 6_000, seed=args.seed,
        parallel=not args.serial, verify=args.oracle, **_sweep_kwargs(args),
    )
    return data.render()


def _resilience(args) -> str:
    """Naive vs hardened reliability under identical fault schedules."""
    data = figures.resilience_comparison(
        n_requests=args.requests or 6_000, seed=args.seed,
        parallel=not args.serial, verify=args.oracle, **_sweep_kwargs(args),
    )
    out = data.render()
    comparison = data.extras["comparison"]
    if comparison:
        out += "\n\n== per-cell deltas (identical fault schedules) ==\n"
        out += "\n".join(comparison)
    return out


def _overload(args) -> str:
    """Static vs adaptive admission across the offered-load grid."""
    data = figures.overload_goodput(
        n_requests=args.requests or 4_000, seed=args.seed,
        parallel=not args.serial, verify=args.oracle, **_sweep_kwargs(args),
    )
    out = data.render()
    comparison = data.extras["comparison"]
    if comparison:
        out += "\n\n== per-cell deltas (identical arrival schedules) ==\n"
        out += "\n".join(comparison)
    return out


def _autoscale(args) -> str:
    """Static pool vs closed-loop autoscaler behind the dispatcher tier."""
    data = figures.autoscale_efficiency(
        n_requests=args.requests or 4_000, seed=args.seed,
        quick=args.quick, parallel=not args.serial, verify=args.oracle, **_sweep_kwargs(args),
    )
    out = data.render()
    comparison = data.extras["comparison"]
    if comparison:
        out += "\n\n== per-cell deltas (identical arrival schedules) ==\n"
        out += "\n".join(comparison)
    return out


def _scenario(args) -> str:
    """Composed scenario: expand a declarative spec, run it, report."""
    from repro.experiments.scenario import (
        BUILTIN_SCENARIOS,
        ScenarioError,
        load_spec,
    )

    ref = args.spec or "composed"
    try:
        if ref in BUILTIN_SCENARIOS:
            spec = BUILTIN_SCENARIOS[ref](
                n_requests=args.requests or 4_000,
                seed=args.seed,
                quick=args.quick,
            )
        else:
            spec = load_spec(ref)
        # Expansion validates every axis; --validate stops here.
        cells = spec.expand()
    except ScenarioError as error:
        raise SystemExit(f"scenario validation FAILED: {error}")
    if args.validate:
        lines = [
            f"scenario OK: {spec.name!r} expands to {len(cells)} cells",
            f"  policies:  {', '.join(p.label for p in spec.policies)}",
            f"  workloads: {', '.join(w.label for w in spec.workloads)}",
            f"  loads:     {', '.join(f'{v:g}' for v in spec.loads)}",
            f"  modes:     {', '.join(m.label or '(default)' for m in spec.modes)}",
            f"  faults:    {', '.join(f.label or '(none)' for f in spec.faults)}",
            f"  scales:    {', '.join(s.label or '(default)' for s in spec.scales)}",
        ]
        return "\n".join(lines)
    report = spec.run(
        parallel=not args.serial,
        archive=args.export_dir,
        **_sweep_kwargs(args),
    )
    return report.render()


def _fuzz(args) -> str:
    """Deterministic chaos fuzzer under the invariant oracle."""
    from pathlib import Path

    from repro.verify import fuzz as fuzz_mod

    if args.validate:
        # Validate reproducer specs without running them: the --replay
        # path if given, else every committed corpus entry.
        paths = (
            [Path(args.replay)]
            if args.replay
            else sorted(Path("tests/verify/corpus").glob("*.json"))
        )
        if not paths:
            raise SystemExit("fuzz --validate: no reproducer specs found")
        problems: list[str] = []
        for path in paths:
            issues = fuzz_mod.validate_spec_file(path)
            if issues:
                problems.append(f"{path}:")
                problems.extend(f"  {issue}" for issue in issues)
        if problems:
            raise SystemExit(
                "fuzz --validate FAILED:\n" + "\n".join(problems)
            )
        return f"fuzz --validate OK: {len(paths)} reproducer spec(s) well-formed"
    if args.replay:
        outcome = fuzz_mod.replay(args.replay)
        if not outcome.ok:
            raise SystemExit(
                f"fuzz --replay {args.replay}: {outcome.status} "
                f"[{outcome.engine}] {outcome.message}"
            )
        return (
            f"fuzz --replay {args.replay}: ok on both engines "
            f"(no violation, no divergence)"
        )
    budget = args.budget if args.budget is not None else (25 if args.quick else 100)
    out_dir = args.export_dir or ".fuzz-findings"
    report = fuzz_mod.fuzz_campaign(
        seed=args.seed,
        budget=budget,
        out_dir=out_dir,
        progress=lambda line: print(f"  [fuzz] {line}", file=sys.stderr),
    )
    if not report.clean:
        raise SystemExit(report.render())
    return report.render()


def _trace(args) -> str:
    """Telemetry run: lifecycle spans, staleness report, sampled series."""
    import numpy as np

    from repro.experiments import (
        SimulationConfig,
        run_with_telemetry,
        save_telemetry,
        staleness_response_table,
        validate_telemetry_dir,
    )

    config = SimulationConfig(
        policy=args.policy,
        policy_params=_parse_policy_params(args.policy_param),
        workload=args.workload,
        load=args.load,
        n_requests=args.requests or 5_000,
        seed=args.seed,
        engine=args.engine or "heap",
        telemetry={"spans": True, "sample_interval": args.sample_interval},
    )
    result, report = run_with_telemetry(config)
    lines = [
        f"== request-lifecycle telemetry: {config.describe()} ==",
        f"spans: {len(report.spans)} (dropped: {report.spans_dropped})  "
        f"samples: {len(report.series['time'])} @ {report.sample_interval * 1e3:g}ms  "
        f"mean response: {result.mean_response_time_ms:.3f}ms",
        "",
        "-- response time vs decision-information staleness --",
        staleness_response_table(report.staleness(), report.response_times()),
    ]
    queue_columns = [name for name in report.series if name.endswith(".queue")]
    if queue_columns:
        peaks = [float(report.series[name].max()) for name in queue_columns]
        means = [float(report.series[name].mean()) for name in queue_columns]
        lines += [
            "",
            "-- sampled series overview --",
            f"per-server queue: mean {np.mean(means):.2f}, "
            f"peak {max(peaks):.0f}; "
            f"in-flight messages: peak {report.series['net.inflight'].max():.0f}; "
            f"dropped: {report.series['net.dropped'][-1]:.0f}",
        ]
    accounting = report.accounting
    messages = ", ".join(f"{k}={v}" for k, v in accounting["messages"].items())
    policy_counters = ", ".join(f"{k}={v}" for k, v in accounting["policy"].items())
    lines += ["", f"messages: {messages}"]
    if policy_counters:
        lines.append(f"policy counters: {policy_counters}")
    if args.export_dir:
        paths = save_telemetry(report, args.export_dir)
        checked = validate_telemetry_dir(args.export_dir)
        lines += [
            "",
            f"exported {checked['spans']} spans, {checked['series']} samples x "
            f"{checked['series_columns']} series -> {paths['spans'].parent} "
            "(schema validated)",
        ]
    return "\n".join(lines)


def _parity(args) -> str:
    """Prove heap and calendar engines produce bit-identical results."""
    from repro.experiments import engine_parity, parity_suite

    suite = parity_suite(n_requests=args.requests or 1_200, seed=args.seed)
    report = engine_parity(suite, parallel=not args.serial)
    if not report.ok:
        raise SystemExit(report.render())
    return report.render()


def _fastparity(args) -> str:
    """Tier-2 validation: fast path vs heap at the distribution level."""
    from repro.experiments.parity import distribution_parity, fastpath_suite

    suite = fastpath_suite(n_requests=args.requests or 4_000, seed=args.seed)
    report = distribution_parity(suite)
    if not report.ok:
        raise SystemExit(report.render())
    return report.render()


def _scale(args) -> str:
    """Large-N scale bench: heap vs fast throughput + mean-field check.

    Writes ``BENCH_scale.json`` (schema-validated); with
    ``--check-against`` also compares speedups to a committed baseline
    and exits nonzero on >25% regression, a broken 10x floor, or a
    failed mean-field check.
    """
    from repro.experiments.perf import (
        check_scale_regression,
        load_bench,
        render_bench,
        save_bench,
        scale_trajectory,
    )

    heap_requests = args.requests or (6_000 if args.quick else 20_000)
    data = scale_trajectory(
        n_servers=args.servers,
        heap_requests=heap_requests,
        fast_requests=heap_requests * 10,
        seed=args.seed,
    )
    path = save_bench(data, (args.bench_file or ["BENCH_scale.json"])[0])
    out = render_bench(data) + f"\n[written to {path}]"
    problems: list[str] = []
    if not data["meanfield_ok"]:
        problems.append("mean-field check failed (see cells above)")
    if args.check_against:
        problems += check_scale_regression(data, load_bench(args.check_against))
        out += f"\n[checked against {args.check_against}]"
    if problems:
        raise SystemExit(out + "\nscale bench FAILED:\n  " + "\n  ".join(problems))
    return out


def _bench_engines(args) -> str:
    """Engine x cluster-size throughput trajectory -> BENCH_engines.json."""
    from repro.experiments.perf import engine_trajectory, render_bench, save_bench

    base_requests = args.requests or (5_000 if args.quick else 20_000)
    data = engine_trajectory(
        sizes=(16, 100, 1000) if not args.quick else (16, 100),
        base_requests=base_requests,
        seed=args.seed,
    )
    path = save_bench(data, (args.bench_file or ["BENCH_engines.json"])[0])
    return render_bench(data) + f"\n[written to {path}]"


def _validate_bench(args) -> str:
    """Schema-validate BENCH_*.json artifacts; exit nonzero on failure."""
    from repro.experiments.perf import BenchValidationError, load_bench, validate_bench

    if not args.bench_file:
        raise SystemExit("validate-bench requires at least one --bench-file")
    lines = []
    failures = []
    for path in args.bench_file:
        try:
            kind = validate_bench(load_bench(path), source=str(path))
            lines.append(f"  {path}: OK ({kind})")
        except BenchValidationError as error:
            failures.append(f"  {path}: {error}")
    if failures:
        raise SystemExit("bench validation FAILED:\n" + "\n".join(failures))
    return "bench validation OK:\n" + "\n".join(lines)


def _serve(args) -> str:
    """Run one standalone live UDP server node until the time limit."""
    import asyncio

    from repro.live.clock import WallClock
    from repro.live.server import LiveServer

    async def _run() -> str:
        loop = asyncio.get_running_loop()
        server = LiveServer(
            0,
            WallClock(loop),
            workers=args.workers,
            mode=args.live_mode,
        )
        transport, _ = await loop.create_datagram_endpoint(
            lambda: server, local_addr=("127.0.0.1", args.port)
        )
        try:
            host, port = server.address
            print(
                f"repro serve: node 0 on {host}:{port} "
                f"(mode={args.live_mode}, workers={args.workers}; "
                f"stopping after --time-limit {args.time_limit:g}s or Ctrl-C)",
                flush=True,
            )
            await asyncio.sleep(args.time_limit)
        finally:
            server.close()
            transport.close()
        counters = ", ".join(f"{k}={v}" for k, v in server.counters().items())
        return f"serve: stopped after {args.time_limit:g}s ({counters})"

    try:
        return asyncio.run(_run())
    except KeyboardInterrupt:
        return "serve: interrupted"


def _drive(args) -> str:
    """Live loopback poll-size ladder vs the calibrated simulation."""
    from dataclasses import replace

    from repro.live.harness import (
        LiveRunConfig,
        drive_comparison,
        render_comparison_table,
        run_loopback,
    )

    base = LiveRunConfig(
        policy_params=_parse_policy_params(args.policy_param),
        load=args.live_load,
        n_servers=args.live_servers,
        n_requests=args.requests or 960,
        seed=args.seed,
        mode=args.live_mode,
        workers=args.workers,
        sample_interval=args.sample_interval,
        time_limit=args.time_limit,
    )
    try:
        poll_sizes = tuple(
            int(part) for part in args.poll_sizes.split(",") if part.strip()
        )
    except ValueError:
        raise SystemExit(f"--poll-sizes expects a CSV of ints: {args.poll_sizes!r}")
    if not poll_sizes:
        raise SystemExit("--poll-sizes must name at least one poll size")
    comparison = drive_comparison(
        base, poll_sizes=poll_sizes, compare_sim=not args.no_compare_sim
    )
    lines = [
        f"== sim-vs-real poll-size ladder: {base.n_servers} loopback servers @ "
        f"{base.load:.0%} per-server load, {base.n_requests} requests, "
        f"mode={base.mode}, seed={base.seed} ==",
        render_comparison_table(comparison),
    ]
    if args.export_dir or args.record_trace:
        # One extra instrumented run at the largest poll size: the ladder
        # itself stays uninstrumented so its timings are undisturbed.
        instrumented = replace(
            base,
            policy="polling",
            policy_params={**base.policy_params, "poll_size": max(poll_sizes)},
            telemetry=bool(args.export_dir),
        )
        result = run_loopback(instrumented)
        if args.export_dir:
            from repro.experiments import save_telemetry, validate_telemetry_dir

            paths = save_telemetry(result.telemetry_report, args.export_dir)
            checked = validate_telemetry_dir(args.export_dir)
            lines += [
                "",
                f"exported {checked['spans']} live spans, "
                f"{checked['series']} samples x {checked['series_columns']} "
                f"series -> {paths['spans'].parent} (schema validated)",
            ]
        if args.record_trace:
            from repro.workload.replay import live_trace, save_arrivals

            trace = live_trace(
                result.arrival_epochs, result.service_times, source="repro-drive"
            )
            save_arrivals(trace, args.record_trace)
            lines += [
                "",
                f"recorded {len(trace)} live arrivals (wall-clock epochs "
                f"normalized to t=0) -> {args.record_trace}",
            ]
    return "\n".join(lines)


_COMMANDS: dict[str, tuple[Callable, str]] = {
    "table1": (_table1, "Table 1: trace statistics"),
    "fig2": (_fig2, "Figure 2: load-index inaccuracy vs delay"),
    "fig3": (_fig3, "Figure 3: broadcast frequency sweep"),
    "fig4": (_fig4, "Figure 4: poll size (simulation model)"),
    "fig6": (_fig6, "Figure 6: poll size (prototype model)"),
    "table2": (_table2, "Table 2: discarding slow-responding polls"),
    "profile": (_profile, "§3.2 slow-poll profile"),
    "messages": (_messages, "§2.4 message scaling ablation"),
    "compare": (_compare, "policy comparison with confidence intervals"),
    "parity": (_parity, "heap vs calendar engine determinism check"),
    "chaos": (_chaos, "chaos campaign: resilience under injected faults"),
    "resilience": (_resilience, "naive vs hardened reliability layer under chaos"),
    "overload": (_overload, "overload campaign: goodput past saturation"),
    "autoscale": (_autoscale, "autoscale campaign: goodput vs provisioning cost"),
    "scenario": (_scenario, "declarative scenario composition (spec file or builtin)"),
    "fuzz": (_fuzz, "deterministic chaos fuzzer under the invariant oracle"),
    "trace": (_trace, "request-lifecycle telemetry + staleness report"),
    "fastparity": (_fastparity, "fast path vs heap distribution-level parity"),
    "scale": (_scale, "large-N heap-vs-fast bench + mean-field check"),
    "bench-engines": (_bench_engines, "engine x size throughput trajectory"),
    "validate-bench": (_validate_bench, "schema-validate BENCH_*.json artifacts"),
    "serve": (_serve, "standalone live UDP server node (loopback prototype)"),
    "drive": (_drive, "live loopback poll-size ladder vs calibrated simulation"),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate tables/figures of 'Cluster Load Balancing "
        "for Fine-grain Network Services' (IPPS 2002).",
    )
    parser.add_argument("command", choices=list(_COMMANDS) + ["list"],
                        help="which artifact to regenerate")
    parser.add_argument("--requests", type=int, default=None,
                        help="requests per simulated point (default: publication size)")
    parser.add_argument("--quick", action="store_true",
                        help="smoke-test size (overridden by --requests)")
    parser.add_argument("--seed", type=int, default=0, help="experiment seed")
    parser.add_argument("--serial", action="store_true",
                        help="disable the process-pool sweep")
    parser.add_argument("--engine", choices=["heap", "calendar", "fast"], default=None,
                        help="execution engine (default: heap; 'fast' is the "
                             "numpy batch engine and rejects configs it "
                             "cannot represent)")
    parser.add_argument("--cache-dir", default=None,
                        help="result cache location (default: .repro-cache "
                             "or $REPRO_CACHE_DIR)")
    parser.add_argument("--no-cache", action="store_true",
                        help="disable the persistent result cache")
    parser.add_argument("--workload", default="poisson_exp",
                        help="workload for `compare` (default: poisson_exp)")
    parser.add_argument("--load", type=float, default=0.9,
                        help="load level for `compare` (default: 0.9)")
    parser.add_argument("--replications", type=int, default=5,
                        help="replications for `compare` (default: 5)")
    parser.add_argument("--policy", default="polling",
                        help="policy for `trace` (default: polling)")
    parser.add_argument("--policy-param", action="append", default=[],
                        metavar="KEY=VALUE",
                        help="policy parameter for `trace` (repeatable)")
    parser.add_argument("--sample-interval", type=float, default=0.05,
                        help="telemetry series grid spacing in simulated "
                             "seconds for `trace` (default: 0.05)")
    parser.add_argument("--export-dir", default=None,
                        help="export `trace` telemetry (spans.jsonl, "
                             "series.csv, accounting.json) to this directory; "
                             "for `scenario`, archive all results to this path")
    parser.add_argument("--spec", default=None, metavar="NAME_OR_PATH",
                        help="for `scenario`: a builtin name (default: "
                             "'composed') or a .json/.yaml spec file")
    parser.add_argument("--validate", action="store_true",
                        help="for `scenario`: expand and validate the spec "
                             "without running it (exits nonzero naming the "
                             "offending axis on failure); for `fuzz`: "
                             "validate reproducer specs (--replay PATH or "
                             "the committed corpus) without running them")
    parser.add_argument("--oracle", action="store_true",
                        help="for `chaos`/`resilience`/`overload`/`autoscale`: "
                             "run every cell under the inline invariant oracle "
                             "(exits nonzero on the first violation; results "
                             "are bit-identical to oracle-off runs)")
    parser.add_argument("--budget", type=int, default=None,
                        help="for `fuzz`: number of generated cases "
                             "(default: 100, or 25 with --quick)")
    parser.add_argument("--replay", default=None, metavar="PATH",
                        help="for `fuzz`: replay one reproducer spec on both "
                             "engines instead of generating cases (with "
                             "--validate: validate it without running)")
    parser.add_argument("--servers", type=int, default=1000,
                        help="cluster size for `scale` (default: 1000)")
    parser.add_argument("--bench-file", action="append", default=None,
                        metavar="PATH",
                        help="bench artifact path: output for `scale`/"
                             "`bench-engines`, input for `validate-bench` "
                             "(repeatable)")
    parser.add_argument("--check-against", default=None, metavar="BASELINE",
                        help="for `scale`: committed BENCH_scale.json baseline "
                             "to enforce the speedup-regression gate against")
    parser.add_argument("--live-servers", type=int, default=4,
                        help="for `drive`: loopback server count (default: 4)")
    parser.add_argument("--live-load", type=float, default=0.15,
                        help="for `drive`: per-server load; n_servers*load "
                             "must stay <= 0.85 in spin mode since the whole "
                             "loopback harness shares one CPU (default: 0.15)")
    parser.add_argument("--live-mode", choices=["spin", "sleep"], default="spin",
                        help="for `serve`/`drive`: service work burns real CPU "
                             "(spin) or just waits (sleep) (default: spin)")
    parser.add_argument("--poll-sizes", default="2,4,8", metavar="CSV",
                        help="for `drive`: poll-size ladder (default: 2,4,8)")
    parser.add_argument("--no-compare-sim", action="store_true",
                        help="for `drive`: skip the calibrated simulation "
                             "baseline columns")
    parser.add_argument("--time-limit", type=float, default=60.0,
                        help="for `serve`/`drive`: hard wall-clock bound per "
                             "live run in seconds (default: 60)")
    parser.add_argument("--record-trace", default=None, metavar="PATH",
                        help="for `drive`: record live arrivals to a replay "
                             "trace (.csv/.jsonl); wall-clock epochs are "
                             "normalized to t=0 on save")
    parser.add_argument("--port", type=int, default=0,
                        help="for `serve`: UDP port (default: 0 = ephemeral)")
    parser.add_argument("--workers", type=int, default=1,
                        help="for `serve`/`drive`: worker slots per server "
                             "(default: 1)")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for name, (_fn, description) in _COMMANDS.items():
            print(f"  {name:<10s} {description}")
        return 0
    if args.quick and args.requests is None:
        if args.command in _QUICK_REQUESTS:
            args.requests = _QUICK_REQUESTS[args.command]
        else:
            print(
                f"[--quick has no preset for {args.command!r}; "
                "running at the publication size]",
                file=sys.stderr,
            )
    args.result_cache = None
    if not args.no_cache:
        from repro.experiments.cache import ResultCache

        args.result_cache = ResultCache(args.cache_dir)
    runner, _description = _COMMANDS[args.command]
    started = time.perf_counter()
    try:
        output = runner(args)
    except InvariantViolation as violation:
        raise SystemExit(f"invariant violation: {violation}")
    elapsed = time.perf_counter() - started
    print(output)
    cache = args.result_cache
    if cache is not None and (cache.hits or cache.misses):
        print(
            f"[cache: {cache.hits} hits, {cache.misses} misses "
            f"-> {str(cache.root)}]"
        )
    print(f"\n[{args.command} regenerated in {elapsed:.1f}s]")
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
