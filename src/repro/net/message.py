"""Message record and kind taxonomy."""

from __future__ import annotations

from enum import Enum
from typing import Any

__all__ = ["Message", "MessageKind"]


class MessageKind(str, Enum):
    """Kinds of cluster-internal messages (used for accounting).

    The paper's §2.4 scalability argument is about how message *counts*
    of each kind scale with load, servers, and clients — the transport
    tallies them per kind so the argument can be reproduced empirically.
    """

    REQUEST = "request"
    RESPONSE = "response"
    REJECT = "reject"
    FORWARD = "forward"
    POLL = "poll"
    POLL_REPLY = "poll_reply"
    BROADCAST = "broadcast"
    MANAGER_QUERY = "manager_query"
    MANAGER_REPLY = "manager_reply"
    MANAGER_NOTIFY = "manager_notify"
    PUBLISH = "publish"
    HEARTBEAT = "heartbeat"
    OTHER = "other"


class Message:
    """A message in flight. ``payload`` is arbitrary Python data."""

    __slots__ = ("kind", "src", "dst", "payload", "size_bytes", "send_time")

    def __init__(
        self,
        kind: MessageKind,
        src: int,
        dst: int,
        payload: Any,
        size_bytes: int,
        send_time: float,
    ):
        self.kind = kind
        self.src = src
        self.dst = dst
        self.payload = payload
        self.size_bytes = size_bytes
        self.send_time = send_time

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Message {self.kind.value} {self.src}->{self.dst} "
            f"t={self.send_time:.6f} {self.size_bytes}B>"
        )


#: Default wire sizes (bytes) per message kind; small control messages
#: modelled as one minimal Ethernet frame, requests/responses as a small
#: RPC payload. Only used for byte accounting and the optional switch
#: model — the constant-latency experiments are size-independent.
DEFAULT_SIZES: dict[MessageKind, int] = {
    MessageKind.REQUEST: 512,
    MessageKind.RESPONSE: 1024,
    MessageKind.REJECT: 64,
    MessageKind.FORWARD: 512,
    MessageKind.POLL: 64,
    MessageKind.POLL_REPLY: 64,
    MessageKind.BROADCAST: 64,
    MessageKind.MANAGER_QUERY: 64,
    MessageKind.MANAGER_REPLY: 64,
    MessageKind.MANAGER_NOTIFY: 64,
    MessageKind.PUBLISH: 128,
    MessageKind.HEARTBEAT: 64,
    MessageKind.OTHER: 64,
}
