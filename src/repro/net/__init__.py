"""Message-level network substrate for the service cluster.

Clients and servers inside the paper's cluster communicate over a
switched 100 Mb/s Ethernet (layer 2) with no TCP-aware front end, so all
load information travels in explicit messages. This subpackage provides:

- :mod:`~repro.net.latency` — latency models plus the paper's measured
  constants (516 µs request+response, 290 µs idle UDP RTT, 339 µs TCP RTT
  without setup/teardown).
- :mod:`~repro.net.transport` — unicast :class:`Network` with per-kind
  message/byte accounting and a :class:`BroadcastChannel`.
- :mod:`~repro.net.switch` — an optional store-and-forward switched
  Ethernet model (per-port egress queues, serialization delay) for
  ablations that need bandwidth contention.
- :mod:`~repro.net.faults` — seeded message-level fault models (loss,
  duplication, jitter, bidirectional partitions) for chaos campaigns.
"""

from repro.net.latency import (
    ConstantLatency,
    ExponentialLatency,
    LatencyModel,
    PaperNetworkConstants,
    PAPER_NET,
    UniformLatency,
)
from repro.net.faults import NetworkFaults
from repro.net.message import Message, MessageKind
from repro.net.transport import BroadcastChannel, Network
from repro.net.switch import SwitchedEthernet

__all__ = [
    "BroadcastChannel",
    "ConstantLatency",
    "ExponentialLatency",
    "LatencyModel",
    "Message",
    "MessageKind",
    "Network",
    "NetworkFaults",
    "PAPER_NET",
    "PaperNetworkConstants",
    "SwitchedEthernet",
    "UniformLatency",
]
