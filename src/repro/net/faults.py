"""Seeded, composable message-level fault models.

The paper's §3.1 robustness claim rests on soft state surviving *messy*
failures, not just clean crashes: announcements get lost or duplicated,
links jitter, and node groups partition. This module provides the
network-side half of the chaos subsystem — a :class:`NetworkFaults`
object consulted by :class:`~repro.net.transport.Network` on every send
and every delivery:

- **loss** — each message is dropped with probability ``loss`` (per
  kind overridable) at send time;
- **duplication** — each delivered message is additionally delivered a
  second time (its own latency draw) with probability ``duplicate``;
- **jitter** — an exponential extra one-way delay with mean
  ``jitter_mean`` seconds is added to every delivery;
- **partitions** — bidirectional cuts between two node groups; messages
  crossing an active cut are dropped at send time, and messages already
  in flight when the cut activates are dropped at delivery time;
- **unreachable** — a (shared, mutable) set of dead nodes; messages to
  or from them are dropped at delivery time, so nothing is ever
  delivered to a crashed node, even if it crashed mid-flight.

All randomness flows through one injected ``numpy`` generator, and every
draw happens in message-send order — which is identical under the heap
and calendar engines — so chaos runs are bit-identical at a fixed seed.

Composability: the fault model sits *behind* ``Network.drop_filter``
(deterministic drops, e.g. the failure injector's dead-node filter run
first and consume no randomness), so both mechanisms stack.
"""

from __future__ import annotations

from typing import Iterable, Optional

import numpy as np

from repro.net.message import Message, MessageKind

__all__ = ["NetworkFaults"]

#: partition handle: an (immutable) pair of node groups
PartitionPair = tuple[frozenset, frozenset]


def _validate_probability(name: str, value: float) -> float:
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value}")
    return float(value)


class NetworkFaults:
    """Per-message fault decisions for one :class:`Network`.

    Parameters
    ----------
    rng:
        Generator driving every probabilistic decision (loss, jitter,
        duplication). Use a named cluster substream so runs are
        reproducible and engine-independent.
    loss, duplicate, jitter_mean:
        Default per-message fault parameters (probability, probability,
        mean extra delay in seconds).
    per_kind:
        Optional ``{MessageKind: {"loss"|"duplicate"|"jitter_mean": v}}``
        overrides, e.g. ``{MessageKind.PUBLISH: {"loss": 1.0}}`` to
        silence the availability channel only.
    unreachable:
        Set of node ids considered crashed; held by reference so a
        failure injector can share its live ``dead`` set.
    """

    __slots__ = (
        "rng",
        "loss",
        "duplicate",
        "jitter_mean",
        "per_kind",
        "unreachable",
        "partitions",
        "lost_counts",
        "duplicated_counts",
        "partition_drop_counts",
        "in_flight_drop_counts",
    )

    def __init__(
        self,
        rng: np.random.Generator,
        loss: float = 0.0,
        duplicate: float = 0.0,
        jitter_mean: float = 0.0,
        per_kind: Optional[dict[MessageKind, dict[str, float]]] = None,
        unreachable: Optional[set[int]] = None,
    ):
        self.rng = rng
        self.loss = _validate_probability("loss", loss)
        self.duplicate = _validate_probability("duplicate", duplicate)
        if jitter_mean < 0:
            raise ValueError(f"jitter_mean must be >= 0, got {jitter_mean}")
        self.jitter_mean = float(jitter_mean)
        self.per_kind = dict(per_kind) if per_kind else {}
        for kind, overrides in self.per_kind.items():
            unknown = set(overrides) - {"loss", "duplicate", "jitter_mean"}
            if unknown:
                raise ValueError(f"unknown per-kind override(s) for {kind}: {sorted(unknown)}")
        self.unreachable: set[int] = unreachable if unreachable is not None else set()
        #: active bidirectional cuts
        self.partitions: list[PartitionPair] = []
        # per-kind counters (MessageKind -> int)
        self.lost_counts: dict[MessageKind, int] = {}
        self.duplicated_counts: dict[MessageKind, int] = {}
        self.partition_drop_counts: dict[MessageKind, int] = {}
        self.in_flight_drop_counts: dict[MessageKind, int] = {}

    # ------------------------------------------------------------------
    # partitions
    # ------------------------------------------------------------------
    def add_partition(self, group_a: Iterable[int], group_b: Iterable[int]) -> PartitionPair:
        """Sever all traffic between ``group_a`` and ``group_b``.

        Returns the pair handle for :meth:`remove_partition`. Groups may
        contain both server and client node ids.
        """
        pair = (frozenset(int(n) for n in group_a), frozenset(int(n) for n in group_b))
        if not pair[0] or not pair[1]:
            raise ValueError("partition groups must be non-empty")
        if pair[0] & pair[1]:
            raise ValueError(f"partition groups overlap: {sorted(pair[0] & pair[1])}")
        self.partitions.append(pair)
        return pair

    def remove_partition(self, pair: PartitionPair) -> None:
        """Heal a partition previously created by :meth:`add_partition`."""
        self.partitions.remove(pair)

    def severed(self, src: int, dst: int) -> bool:
        """True when an active partition separates ``src`` from ``dst``."""
        for group_a, group_b in self.partitions:
            if (src in group_a and dst in group_b) or (src in group_b and dst in group_a):
                return True
        return False

    # ------------------------------------------------------------------
    # per-message decisions
    # ------------------------------------------------------------------
    def _params_for(self, kind: MessageKind) -> tuple[float, float, float]:
        overrides = self.per_kind.get(kind)
        if overrides is None:
            return self.loss, self.duplicate, self.jitter_mean
        return (
            overrides.get("loss", self.loss),
            overrides.get("duplicate", self.duplicate),
            overrides.get("jitter_mean", self.jitter_mean),
        )

    def on_send(self, message: Message) -> Optional[tuple[float, bool]]:
        """Fault verdict at send time.

        Returns ``None`` when the message is dropped (partition cut or
        probabilistic loss), else ``(extra_jitter_seconds, duplicate)``.
        Partition checks consume no randomness; the loss, jitter, and
        duplication draws happen in that fixed order so stream
        consumption is reproducible.
        """
        kind = message.kind
        if self.severed(message.src, message.dst):
            self.partition_drop_counts[kind] = self.partition_drop_counts.get(kind, 0) + 1
            return None
        loss, duplicate, jitter_mean = self._params_for(kind)
        if loss > 0.0 and self.rng.random() < loss:
            self.lost_counts[kind] = self.lost_counts.get(kind, 0) + 1
            return None
        jitter = float(self.rng.exponential(jitter_mean)) if jitter_mean > 0.0 else 0.0
        duplicated = bool(duplicate > 0.0 and self.rng.random() < duplicate)
        if duplicated:
            self.duplicated_counts[kind] = self.duplicated_counts.get(kind, 0) + 1
        return jitter, duplicated

    def blocks_delivery(self, message: Message) -> bool:
        """Fault verdict at delivery time (for messages already in flight).

        A message is swallowed when either endpoint has crashed or a
        partition now separates the endpoints — this is what guarantees
        that *no message is ever delivered to a crashed or
        partitioned-away node*, even for crashes/cuts that happen while
        the message is on the wire. Consumes no randomness.
        """
        unreachable = self.unreachable
        if message.dst in unreachable or message.src in unreachable or self.severed(
            message.src, message.dst
        ):
            kind = message.kind
            self.in_flight_drop_counts[kind] = self.in_flight_drop_counts.get(kind, 0) + 1
            return True
        return False

    # ------------------------------------------------------------------
    def total_lost(self) -> int:
        """Messages dropped by probabilistic loss (all kinds)."""
        return sum(self.lost_counts.values())

    def total_duplicated(self) -> int:
        """Messages delivered twice (all kinds)."""
        return sum(self.duplicated_counts.values())

    def total_partition_dropped(self) -> int:
        """Messages dropped at a partition cut, send- or delivery-time."""
        return sum(self.partition_drop_counts.values()) + sum(
            self.in_flight_drop_counts.values()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<NetworkFaults loss={self.loss} dup={self.duplicate} "
            f"jitter={self.jitter_mean} partitions={len(self.partitions)} "
            f"lost={self.total_lost()}>"
        )
