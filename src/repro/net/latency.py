"""Network latency models and the paper's measured constants.

All times are seconds. The paper reports three calibration measurements
on its 100 Mb/s switched Linux cluster (Lucent P550):

- request + response network latency = half a TCP round trip **with**
  connection setup/teardown = **516 µs** total per service access;
- idle UDP ping-pong round trip = **290 µs** (used by load polls);
- TCP round trip **without** setup/teardown = **339 µs** (used by the
  centralized load-index manager that emulates IDEAL).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

import numpy as np

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "ExponentialLatency",
    "PaperNetworkConstants",
    "PAPER_NET",
]


class LatencyModel(ABC):
    """One-way message latency distribution."""

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> float:
        """Draw one latency in seconds."""

    @abstractmethod
    def mean(self) -> float:
        """Expected latency in seconds."""


class ConstantLatency(LatencyModel):
    """Deterministic latency (the default for all paper experiments)."""

    __slots__ = ("value",)

    def __init__(self, value: float):
        if value < 0:
            raise ValueError(f"latency must be >= 0, got {value}")
        self.value = value

    def sample(self, rng: np.random.Generator) -> float:
        return self.value

    def mean(self) -> float:
        return self.value

    def __repr__(self) -> str:
        return f"ConstantLatency({self.value!r})"


class UniformLatency(LatencyModel):
    """Uniform latency on ``[low, high]``."""

    __slots__ = ("low", "high")

    def __init__(self, low: float, high: float):
        if not 0 <= low <= high:
            raise ValueError(f"need 0 <= low <= high, got [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng: np.random.Generator) -> float:
        return float(rng.uniform(self.low, self.high))

    def mean(self) -> float:
        return 0.5 * (self.low + self.high)

    def __repr__(self) -> str:
        return f"UniformLatency({self.low!r}, {self.high!r})"


class ExponentialLatency(LatencyModel):
    """Shifted exponential: ``base + Exp(mean_extra)`` (heavy-ish tail)."""

    __slots__ = ("base", "mean_extra")

    def __init__(self, base: float, mean_extra: float):
        if base < 0 or mean_extra < 0:
            raise ValueError("base and mean_extra must be >= 0")
        self.base = base
        self.mean_extra = mean_extra

    def sample(self, rng: np.random.Generator) -> float:
        return self.base + float(rng.exponential(self.mean_extra))

    def mean(self) -> float:
        return self.base + self.mean_extra

    def __repr__(self) -> str:
        return f"ExponentialLatency({self.base!r}, {self.mean_extra!r})"


@dataclass(frozen=True)
class PaperNetworkConstants:
    """The measured constants from the paper, in seconds.

    ``request_response_total`` is the *combined* network time for sending
    a service request and receiving its response (516 µs); the simulator
    charges half in each direction. ``udp_rtt`` is the idle UDP ping-pong
    round trip (290 µs); a poll costs half each way. ``tcp_rtt_nosetup``
    is the manager round trip (339 µs). ``discard_timeout`` is the
    slow-poll discard threshold (10 ms). ``sched_quantum`` is the Linux
    scheduler quantum underlying the prototype's 10/20 ms poll-delay
    modes.
    """

    request_response_total: float = 516e-6
    udp_rtt: float = 290e-6
    tcp_rtt_nosetup: float = 339e-6
    discard_timeout: float = 10e-3
    sched_quantum: float = 10e-3

    @property
    def request_one_way(self) -> float:
        """One-way request (or response) latency: 258 µs."""
        return self.request_response_total / 2.0

    @property
    def poll_one_way(self) -> float:
        """One-way load-inquiry latency: 145 µs."""
        return self.udp_rtt / 2.0

    @property
    def manager_one_way(self) -> float:
        """One-way client<->manager latency: 169.5 µs."""
        return self.tcp_rtt_nosetup / 2.0


#: Module-level singleton with the paper's measured values.
PAPER_NET = PaperNetworkConstants()
