"""Unicast network and broadcast channel with message accounting.

The default transport applies a per-kind one-way :class:`LatencyModel`
and delivers via a scheduled callback. Every send is tallied (count and
bytes per :class:`MessageKind`), which is what the §2.4 message-scaling
ablation measures.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from repro.net.latency import ConstantLatency, LatencyModel
from repro.net.message import DEFAULT_SIZES, Message, MessageKind
from repro.sim.engine import Simulator

__all__ = ["Network", "BroadcastChannel"]

DeliveryCallback = Callable[[Message], None]


class Network:
    """Point-to-point message delivery with per-kind latency models.

    Parameters
    ----------
    sim:
        The simulator whose clock drives deliveries.
    rng:
        Generator used by stochastic latency models.
    default_latency:
        Fallback one-way latency model for kinds without an override.
    """

    __slots__ = (
        "sim",
        "rng",
        "default_latency",
        "_latency_by_kind",
        "message_counts",
        "byte_counts",
        "drop_filter",
        "dropped_counts",
        "switch",
        "faults",
        "deliver_trace",
        "inflight_recorder",
        "drops_recorder",
        "_inflight",
        "_drops_total",
    )

    def __init__(
        self,
        sim: Simulator,
        rng: np.random.Generator,
        default_latency: Optional[LatencyModel] = None,
        switch=None,
    ):
        self.sim = sim
        self.rng = rng
        self.default_latency = default_latency or ConstantLatency(150e-6)
        self._latency_by_kind: dict[MessageKind, LatencyModel] = {}
        self.message_counts: dict[MessageKind, int] = {}
        self.byte_counts: dict[MessageKind, int] = {}
        #: optional callable(Message) -> bool; True means drop (used by
        #: failure injection to partition crashed nodes)
        self.drop_filter: Optional[Callable[[Message], bool]] = None
        self.dropped_counts: dict[MessageKind, int] = {}
        #: optional :class:`repro.net.switch.SwitchedEthernet`; when set,
        #: messages transit the switch (per-port serialization and FIFO
        #: contention) *in addition to* the per-kind latency model, which
        #: then represents protocol-stack time only. Used to validate
        #: the constant-latency abstraction against explicit contention.
        self.switch = switch
        #: optional :class:`repro.net.faults.NetworkFaults`; when set,
        #: sends run through its seeded loss/duplication/jitter/partition
        #: decisions and deliveries re-check partitions + crashed nodes
        #: (chaos campaigns install this; None keeps the exact fast path)
        self.faults = None
        #: optional callable(Message) invoked on every *actual* delivery
        #: (after all fault checks, before the callback); used by the
        #: chaos property tests to assert delivery invariants
        self.deliver_trace: Optional[DeliveryCallback] = None
        #: optional telemetry step recorders (installed by
        #: :class:`repro.telemetry.TelemetryCollector`; None keeps the
        #: allocation-free fast path): in-flight message count and
        #: cumulative dropped-message count over simulated time
        self.inflight_recorder = None
        self.drops_recorder = None
        self._inflight = 0
        self._drops_total = 0

    def set_latency(self, kind: MessageKind, model: LatencyModel) -> None:
        """Override the one-way latency model for one message kind."""
        self._latency_by_kind[kind] = model

    def latency_for(self, kind: MessageKind) -> LatencyModel:
        return self._latency_by_kind.get(kind, self.default_latency)

    def send(
        self,
        kind: MessageKind,
        src: int,
        dst: int,
        payload: Any,
        on_delivery: DeliveryCallback,
        size_bytes: Optional[int] = None,
        extra_delay: float = 0.0,
    ) -> Message:
        """Send a message; ``on_delivery(message)`` fires at arrival.

        ``extra_delay`` is added on top of the sampled network latency
        (used by the prototype model for load-dependent response delays).
        """
        size = DEFAULT_SIZES[kind] if size_bytes is None else size_bytes
        message = Message(kind, src, dst, payload, size, self.sim.now)
        self.message_counts[kind] = self.message_counts.get(kind, 0) + 1
        self.byte_counts[kind] = self.byte_counts.get(kind, 0) + size
        if self.drop_filter is not None and self.drop_filter(message):
            self.dropped_counts[kind] = self.dropped_counts.get(kind, 0) + 1
            self._note_drop()
            return message
        faults = self.faults
        duplicated = False
        if faults is not None:
            verdict = faults.on_send(message)
            if verdict is None:
                self.dropped_counts[kind] = self.dropped_counts.get(kind, 0) + 1
                self._note_drop()
                return message
            jitter, duplicated = verdict
            extra_delay += jitter
        latency = self.latency_for(kind).sample(self.rng) + extra_delay
        self._schedule_delivery(latency, message, on_delivery)
        if duplicated:
            # The duplicate is an independent delivery: its own latency
            # draw, subject to the same delivery-time fault checks. It
            # does not count as a new send in message_counts (the
            # NetworkFaults.duplicated_counts tally covers it).
            dup_latency = self.latency_for(kind).sample(self.rng) + extra_delay
            self._schedule_delivery(dup_latency, message, on_delivery)
        return message

    def _note_drop(self) -> None:
        """Record a lost message on the telemetry drop series (cold path)."""
        recorder = self.drops_recorder
        if recorder is not None:
            self._drops_total += 1
            recorder.record(self.sim.now, float(self._drops_total))

    def _schedule_delivery(
        self, latency: float, message: Message, on_delivery: DeliveryCallback
    ) -> None:
        """Schedule the arrival; keep the allocation-free fast path when
        no faults/trace/telemetry are installed (this is the simulator
        hot path)."""
        recorder = self.inflight_recorder
        if recorder is not None:
            self._inflight += 1
            recorder.record(self.sim.now, float(self._inflight))
        if self.faults is None and self.deliver_trace is None and recorder is None:
            if self.switch is not None:
                self.sim.after(
                    latency,
                    lambda m=message: self.switch.transit(m, on_delivery),
                )
            else:
                self.sim.after(latency, on_delivery, message)
            return
        if self.switch is not None:
            self.sim.after(
                latency,
                lambda m=message: self.switch.transit(
                    m, lambda mm: self._deliver((on_delivery, mm))
                ),
            )
        else:
            self.sim.after(latency, self._deliver, (on_delivery, message))

    def _deliver(self, pair: tuple[DeliveryCallback, Message]) -> None:
        """Final delivery gate: drop in-flight messages whose endpoints
        crashed or were partitioned away while the message travelled."""
        on_delivery, message = pair
        recorder = self.inflight_recorder
        if recorder is not None:
            # The message left flight whether or not the gate blocks it.
            self._inflight -= 1
            recorder.record(self.sim.now, float(self._inflight))
        if self.faults is not None and self.faults.blocks_delivery(message):
            self._note_drop()
            return
        if self.deliver_trace is not None:
            self.deliver_trace(message)
        on_delivery(message)

    def total_messages(self) -> int:
        """Total messages sent (all kinds, including dropped)."""
        return sum(self.message_counts.values())

    def reset_counters(self) -> None:
        """Zero the accounting tallies (e.g. after warmup)."""
        self.message_counts.clear()
        self.byte_counts.clear()
        self.dropped_counts.clear()


class BroadcastChannel:
    """A one-to-many channel (IP multicast / well-known pub-sub channel).

    Subscribers register a delivery callback; a publish fans out one
    message per subscriber (each with its own latency draw), matching the
    paper's accounting in which broadcast cost scales with the number of
    clients.
    """

    __slots__ = ("network", "kind", "_subscribers")

    def __init__(self, network: Network, kind: MessageKind = MessageKind.BROADCAST):
        self.network = network
        self.kind = kind
        self._subscribers: list[tuple[int, DeliveryCallback]] = []

    @property
    def subscriber_count(self) -> int:
        return len(self._subscribers)

    def subscribe(self, node_id: int, on_delivery: DeliveryCallback) -> None:
        """Register ``on_delivery`` for messages published on the channel."""
        self._subscribers.append((node_id, on_delivery))

    def unsubscribe(self, node_id: int) -> None:
        """Remove all subscriptions for ``node_id``."""
        self._subscribers = [(n, cb) for (n, cb) in self._subscribers if n != node_id]

    def publish(self, src: int, payload: Any, size_bytes: Optional[int] = None) -> int:
        """Publish to all subscribers; returns the fan-out count."""
        for node_id, callback in self._subscribers:
            self.network.send(self.kind, src, node_id, payload, callback, size_bytes)
        return len(self._subscribers)
