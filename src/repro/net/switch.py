"""Store-and-forward switched-Ethernet model (optional substrate).

The paper's experiments treat the Lucent P550 switch as constant-latency
because its 22 Gb/s backplane is never the bottleneck at their message
rates. This module models the switch explicitly — per-destination-port
FIFO egress queues with serialization delay ``size/bandwidth`` — so that
ablations can check that assumption (and so the substrate exists for
workloads where it would *not* hold).
"""

from __future__ import annotations

from typing import Callable

from repro.net.message import Message
from repro.sim.engine import Simulator

__all__ = ["SwitchedEthernet"]

DeliveryCallback = Callable[[Message], None]


class _EgressPort:
    """FIFO egress port: messages serialize one at a time.

    ``busy_until`` starts at ``-inf``, not 0: the clock seam permits
    any origin, and an idle port must never delay the first message
    just because the clock happens to read below zero.
    """

    __slots__ = ("busy_until",)

    def __init__(self) -> None:
        self.busy_until = float("-inf")


class SwitchedEthernet:
    """A single switch connecting ``n_ports`` hosts.

    Message timing: ``propagation`` (wire + switch forwarding) plus
    serialization on the destination's egress port at ``bandwidth_bps``,
    queued FIFO behind earlier messages to the same port.

    Defaults follow the paper's testbed: 100 Mb/s host links; the
    backplane (22 Gb/s) is modeled as uncontended, which is exact for
    output-queued switches like the P550 at these rates.
    """

    __slots__ = ("sim", "n_ports", "bandwidth_bps", "propagation", "_ports")

    def __init__(
        self,
        sim: Simulator,
        n_ports: int,
        bandwidth_bps: float = 100e6,
        propagation: float = 20e-6,
    ):
        if n_ports < 1:
            raise ValueError("n_ports must be >= 1")
        if bandwidth_bps <= 0:
            raise ValueError("bandwidth_bps must be > 0")
        self.sim = sim
        self.n_ports = n_ports
        self.bandwidth_bps = bandwidth_bps
        self.propagation = propagation
        self._ports = [_EgressPort() for _ in range(n_ports)]

    def serialization_delay(self, size_bytes: int) -> float:
        """Time to clock ``size_bytes`` onto a link."""
        return size_bytes * 8.0 / self.bandwidth_bps

    def transit(self, message: Message, on_delivery: DeliveryCallback) -> float:
        """Forward ``message``; returns its delivery time.

        The destination port is ``message.dst % n_ports``.
        """
        port = self._ports[message.dst % self.n_ports]
        now = self.sim.now
        start = max(now + self.propagation, port.busy_until)
        done = start + self.serialization_delay(message.size_bytes)
        port.busy_until = done
        self.sim.at(done, on_delivery, message)
        return done

    def port_backlog(self, dst: int) -> float:
        """Seconds of queued serialization work on ``dst``'s egress port."""
        return max(0.0, self._ports[dst % self.n_ports].busy_until - self.sim.now)
