"""Calendar-queue event scheduler (drop-in alternative to the heap).

A calendar queue (Brown, CACM 1988) hashes events into an array of
time-bucketed "days"; dequeue scans forward from the current day and
only consults the handful of events hashed there, giving amortized O(1)
enqueue/dequeue when the queue is sized to the event population — the
binary heap's O(log n) is the comparison point this module exists to
beat on timer-heavy workloads.

Design constraints, in order:

1. **Bit-identical ordering.** Events fire in exactly the heap engine's
   ``(time, seq)`` order, including FIFO ties at equal timestamps, so a
   simulation produces field-for-field identical results under either
   engine (``tests/experiments/test_engine_parity.py`` enforces this).
2. **Same API.** :class:`CalendarSimulator` implements the full
   :class:`~repro.sim.engine.Simulator` surface — ``at``/``after``/
   ``call_soon``/``cancel``/``peek``/``step``/``run``/``trace`` — and
   reuses :class:`~repro.sim.engine.EventHandle`, so callers select an
   engine via :func:`make_simulator` and never branch again.
3. **Self-resizing.** The bucket array doubles/halves with the live
   event count and re-estimates the bucket width from the observed
   inter-event gaps, so no workload-specific tuning is needed.

Buckets are small binary heaps of ``(time, seq, handle)`` tuples (the
same entry layout as the flat heap, so tie-breaking logic is shared by
construction). Cancellation is lazy, exactly as in the heap engine.
"""

from __future__ import annotations

import heapq
import math
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Callable, Optional

from repro.sim.engine import EventHandle, SimulationError, Simulator, _SENTINEL

__all__ = ["CalendarSimulator", "ENGINES", "make_simulator"]

#: smallest bucket array; also the shrink floor
_MIN_BUCKETS = 8

#: how many head events to sample when re-estimating the bucket width
_WIDTH_SAMPLE = 25


class CalendarSimulator:
    """Discrete-event simulator over a self-resizing calendar queue.

    Semantics are identical to :class:`~repro.sim.engine.Simulator`;
    see that class for the API contract. Only the priority-queue data
    structure differs.
    """

    __slots__ = (
        "_buckets",
        "_n_buckets",
        "_width",
        "_day",
        "_qsize",
        "_now",
        "_seq",
        "_pending",
        "_events_executed",
        "trace",
    )

    def __init__(self) -> None:
        self._buckets: list[list[tuple[float, int, EventHandle]]] = [
            [] for _ in range(_MIN_BUCKETS)
        ]
        self._n_buckets: int = _MIN_BUCKETS
        self._width: float = 1e-3  # re-estimated on first resize
        # The dequeue cursor is an *integer* day counter; an event lives
        # in bucket ``int(time/width) % n`` and is due exactly when the
        # cursor reaches ``int(time/width)``. Using the same int-divide
        # on both sides makes enqueue and dequeue agree bit-for-bit —
        # a float "end of window" threshold accumulates rounding error
        # and strands events that land exactly on a bucket boundary.
        self._day: int = 0
        self._qsize: int = 0  # entries in buckets, including cancelled
        self._now: float = 0.0
        self._seq: int = 0
        self._pending: int = 0  # live (non-cancelled) events
        self._events_executed: int = 0
        #: optional callable(time, handle) invoked before each event runs
        self.trace: Optional[Callable[[float, EventHandle], None]] = None

    # ------------------------------------------------------------------
    # clock & introspection (mirrors Simulator)
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) scheduled events."""
        return self._pending

    @property
    def events_executed(self) -> int:
        """Total number of events executed so far."""
        return self._events_executed

    def peek(self) -> float:
        """Time of the next live event, or ``inf`` if none remain."""
        entry = self._min_entry()
        return entry[0] if entry is not None else math.inf

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def at(self, time: float, fn: Callable[..., Any], arg: Any = _SENTINEL) -> EventHandle:
        """Schedule ``fn`` (optionally with one argument) at absolute ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (now={self._now!r}, requested={time!r})"
            )
        self._seq += 1
        handle = EventHandle(time, self._seq, fn, arg)
        _heappush(
            self._buckets[int(time / self._width) % self._n_buckets],
            (time, self._seq, handle),
        )
        self._qsize += 1
        self._pending += 1
        if self._pending > 2 * self._n_buckets:
            self._resize(2 * self._n_buckets)
        return handle

    def after(self, delay: float, fn: Callable[..., Any], arg: Any = _SENTINEL) -> EventHandle:
        """Schedule ``fn`` after a relative ``delay`` (must be >= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        return self.at(self._now + delay, fn, arg)

    def call_soon(self, fn: Callable[..., Any], arg: Any = _SENTINEL) -> EventHandle:
        """Schedule ``fn`` at the current time (after already-queued events)."""
        return self.at(self._now, fn, arg)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a previously scheduled handle (idempotent)."""
        if not handle.cancelled:
            handle.cancelled = True
            self._pending -= 1

    # ------------------------------------------------------------------
    # calendar internals
    # ------------------------------------------------------------------
    def _min_entry(self) -> Optional[tuple[float, int, EventHandle]]:
        """Smallest live ``(time, seq, handle)`` across all bucket heads.

        Purges cancelled heads as a side effect; does not move the
        cursor (safe for :meth:`peek`).
        """
        best: Optional[tuple[float, int, EventHandle]] = None
        heappop = _heappop
        for bucket in self._buckets:
            while bucket and bucket[0][2].cancelled:
                heappop(bucket)
                self._qsize -= 1
            if bucket and (best is None or bucket[0] < best):
                best = bucket[0]
        return best

    def _pop_next(self) -> Optional[tuple[float, int, EventHandle]]:
        """Remove and return the next live entry, advancing the cursor."""
        if self._pending == 0:
            return None
        buckets = self._buckets
        n = self._n_buckets
        width = self._width
        heappop = _heappop
        while True:
            # Scan one full year starting at the cursor's day. A bucket
            # head is due when its own day (computed with the *same*
            # int-divide as enqueue, so no float disagreement) has been
            # reached by the cursor.
            day = self._day
            for _ in range(n):
                bucket = buckets[day % n]
                while bucket and bucket[0][2].cancelled:
                    heappop(bucket)
                    self._qsize -= 1
                if bucket and int(bucket[0][0] / width) <= day:
                    self._day = day
                    self._qsize -= 1
                    return heappop(bucket)
                day += 1
            # Nothing due within a year of the cursor: jump straight to
            # the globally smallest event's day (sparse/far-future
            # case); the rescan pops it on its first probe.
            entry = self._min_entry()
            if entry is None:
                return None
            self._day = int(entry[0] / width)

    def _resize(self, n_buckets: int) -> None:
        """Rebuild with ``n_buckets`` buckets and a re-estimated width."""
        entries = [
            entry
            for bucket in self._buckets
            for entry in bucket
            if not entry[2].cancelled
        ]
        self._width = self._estimate_width(heapq.nsmallest(_WIDTH_SAMPLE, entries))
        self._n_buckets = n_buckets
        self._buckets = [[] for _ in range(n_buckets)]
        width = self._width
        for entry in entries:
            _heappush(self._buckets[int(entry[0] / width) % n_buckets], entry)
        self._qsize = len(entries)
        # Restart the cursor at the current day under the new width;
        # nothing can be scheduled before `now`, so no event is skipped.
        self._day = int(self._now / width)

    def _estimate_width(self, head: list[tuple[float, int, EventHandle]]) -> float:
        """Bucket width from head-of-queue inter-event gaps.

        Brown's rule of thumb: three times the average separation of the
        next events, so a day holds a handful of events. Falls back to
        the current width when the head is degenerate (all ties).
        """
        gaps = [
            later[0] - earlier[0]
            for earlier, later in zip(head, head[1:])
            if later[0] > earlier[0]
        ]
        if not gaps:
            return self._width
        width = 3.0 * (sum(gaps) / len(gaps))
        return max(width, 1e-12)

    # ------------------------------------------------------------------
    # execution (mirrors Simulator)
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next live event. Returns False if none remain."""
        entry = self._pop_next()
        if entry is None:
            return False
        handle = entry[2]
        self._pending -= 1
        self._now = handle.time
        self._events_executed += 1
        self._maybe_shrink()
        if self.trace is not None:
            self.trace(self._now, handle)
        if handle.arg is _SENTINEL:
            handle.fn()
        else:
            handle.fn(handle.arg)
        return True

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until none remain, ``until`` is reached, or
        ``max_events`` have executed (same contract as the heap engine:
        events at exactly ``until`` do execute, and the clock lands on
        ``until`` at exit).
        """
        budget = math.inf if max_events is None else max_events
        limit = math.inf if until is None else until
        executed = 0
        while executed < budget:
            entry = self._pop_next()
            if entry is None:
                break
            if entry[0] > limit:
                # Went past the horizon: put the entry back untouched
                # ((time, seq) unchanged, so ordering is preserved) and
                # rewind the cursor, which _pop_next advanced to the far
                # event's day — events scheduled after this run() at
                # earlier times land in buckets behind that day and must
                # still fire first.
                _heappush(
                    self._buckets[int(entry[0] / self._width) % self._n_buckets],
                    entry,
                )
                self._qsize += 1
                self._day = int(self._now / self._width)
                break
            handle = entry[2]
            self._pending -= 1
            self._now = handle.time
            self._events_executed += 1
            executed += 1
            self._maybe_shrink()
            if self.trace is not None:
                self.trace(self._now, handle)
            if handle.arg is _SENTINEL:
                handle.fn()
            else:
                handle.fn(handle.arg)
        if until is not None and self._now < until:
            self._now = until

    def _maybe_shrink(self) -> None:
        if self._n_buckets > _MIN_BUCKETS and self._pending < self._n_buckets // 2:
            self._resize(max(_MIN_BUCKETS, self._n_buckets // 2))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CalendarSimulator now={self._now:.6f} pending={self._pending} "
            f"buckets={self._n_buckets} width={self._width:.2e}>"
        )


#: selectable event-queue engines, keyed by the name used in
#: ``SimulationConfig.engine`` and the CLI ``--engine`` flag
ENGINES: dict[str, type] = {
    "heap": Simulator,
    "calendar": CalendarSimulator,
}

#: the default engine. The heap remains the default until the calendar
#: queue wins on the end-to-end benches, not just microbenches — see
#: DESIGN.md "Performance architecture" for the measurement.
DEFAULT_ENGINE = "heap"


def make_simulator(engine: str = DEFAULT_ENGINE):
    """Construct an event scheduler by engine name (``heap``/``calendar``)."""
    try:
        cls = ENGINES[engine]
    except KeyError:
        raise ValueError(
            f"unknown engine {engine!r} (choose from {sorted(ENGINES)})"
        ) from None
    return cls()
