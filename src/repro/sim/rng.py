"""Deterministic named random substreams.

Every stochastic component of an experiment draws from its own
``numpy.random.Generator``, derived from ``(experiment seed, component
name)``. Substreams are independent of creation order, so adding a new
component or reordering initialization never perturbs existing streams —
a requirement for comparable parameter sweeps (common random numbers
across policies are obtained by reusing stream names).
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["RngHub", "substream_seed"]


def substream_seed(seed: int, name: str) -> int:
    """Derive a stable 128-bit integer seed from ``(seed, name)``.

    Uses BLAKE2b over the decimal seed and the UTF-8 name, so the mapping
    is stable across Python/NumPy versions and platforms.
    """
    digest = hashlib.blake2b(
        f"{seed}:{name}".encode("utf-8"), digest_size=16
    ).digest()
    return int.from_bytes(digest, "little")


class RngHub:
    """Factory of named, deterministic ``numpy.random.Generator`` streams.

    Example
    -------
    >>> hub = RngHub(42)
    >>> a = hub.stream("arrivals")
    >>> b = hub.stream("service")
    >>> hub2 = RngHub(42)
    >>> float(a.random()) == float(hub2.stream("arrivals").random())
    True
    """

    __slots__ = ("seed", "_streams")

    def __init__(self, seed: int):
        if not isinstance(seed, (int, np.integer)):
            raise TypeError(f"seed must be an int, got {type(seed).__name__}")
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for ``name``."""
        generator = self._streams.get(name)
        if generator is None:
            generator = np.random.default_rng(
                np.random.SeedSequence(substream_seed(self.seed, name))
            )
            self._streams[name] = generator
        return generator

    def fork(self, name: str) -> "RngHub":
        """A child hub whose streams are disjoint from this hub's.

        Used to give each point of a parameter sweep its own universe of
        substreams derived from a single experiment seed.
        """
        return RngHub(substream_seed(self.seed, f"fork:{name}") & (2**63 - 1))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<RngHub seed={self.seed} streams={sorted(self._streams)}>"
