"""Counted resources and FIFO stores for the process layer.

These mirror the classic DES primitives:

- :class:`Resource` — ``capacity`` interchangeable units; ``acquire()``
  returns a signal that succeeds when a unit is granted (FIFO).
- :class:`Store` — an unbounded-or-bounded FIFO buffer of items with
  blocking ``get``/``put``.

The cluster substrate models its server thread pools directly (for
speed), but these primitives are part of the public kernel API and are
used by examples and tests.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque

from repro.sim.engine import SimulationError, Simulator
from repro.sim.events import Signal

__all__ = ["Resource", "Store"]


class Resource:
    """A counted resource with FIFO grant order.

    Example (process style)::

        def user(sim, res):
            yield res.acquire()
            yield 1.0            # hold for 1s
            res.release()
    """

    __slots__ = ("sim", "capacity", "in_use", "_waiters")

    def __init__(self, sim: Simulator, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.in_use = 0
        self._waiters: Deque[Signal] = deque()

    @property
    def available(self) -> int:
        """Units not currently held."""
        return self.capacity - self.in_use

    @property
    def queue_length(self) -> int:
        """Number of acquirers waiting for a unit."""
        return len(self._waiters)

    def acquire(self) -> Signal:
        """Request one unit; the returned signal succeeds when granted."""
        signal = Signal(self.sim, "resource.acquire")
        if self.in_use < self.capacity:
            self.in_use += 1
            signal.succeed()
        else:
            self._waiters.append(signal)
        return signal

    def release(self) -> None:
        """Return one unit, granting it to the oldest waiter if any."""
        if self.in_use <= 0:
            raise SimulationError("release() without matching acquire()")
        if self._waiters:
            # Hand the unit directly to the next waiter: in_use unchanged.
            self._waiters.popleft().succeed()
        else:
            self.in_use -= 1


class Store:
    """A FIFO buffer with blocking ``get`` and (optionally) ``put``.

    ``capacity=None`` means unbounded (puts never block).
    """

    __slots__ = ("sim", "capacity", "_items", "_getters", "_putters")

    def __init__(self, sim: Simulator, capacity: int | None = None):
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1 or None, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: Deque[Signal] = deque()
        self._putters: Deque[tuple[Signal, Any]] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def getters_waiting(self) -> int:
        return len(self._getters)

    @property
    def putters_waiting(self) -> int:
        return len(self._putters)

    def put(self, item: Any) -> Signal:
        """Insert ``item``; the returned signal succeeds once stored."""
        signal = Signal(self.sim, "store.put")
        if self._getters:
            # Hand straight to the oldest getter.
            self._getters.popleft().succeed(item)
            signal.succeed()
        elif self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            signal.succeed()
        else:
            self._putters.append((signal, item))
        return signal

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False if the store is full."""
        if self._getters:
            self._getters.popleft().succeed(item)
            return True
        if self.capacity is None or len(self._items) < self.capacity:
            self._items.append(item)
            return True
        return False

    def get(self) -> Signal:
        """Remove the oldest item; the signal succeeds with the item."""
        signal = Signal(self.sim, "store.get")
        if self._items:
            item = self._items.popleft()
            if self._putters:
                put_signal, pending = self._putters.popleft()
                self._items.append(pending)
                put_signal.succeed()
            signal.succeed(item)
        elif self._putters:
            # Zero-capacity style handoff (only when capacity forces it).
            put_signal, pending = self._putters.popleft()
            put_signal.succeed()
            signal.succeed(pending)
        else:
            self._getters.append(signal)
        return signal

    def try_get(self) -> tuple[bool, Any]:
        """Non-blocking get; returns ``(found, item)``."""
        if not self._items:
            return (False, None)
        item = self._items.popleft()
        if self._putters:
            put_signal, pending = self._putters.popleft()
            self._items.append(pending)
            put_signal.succeed()
        return (True, item)
