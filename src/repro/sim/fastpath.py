"""Vectorized large-N batch engine for the homogeneous policies.

The exact engines (heap/calendar) pay several Python events per request
— arrival, REQUEST delivery, completion, RESPONSE delivery, plus poll
round trips — which tops out around 10^5 events/sec and makes
thousand-server, million-request cells impractical. This module trades
*bit*-level fidelity for *distribution*-level fidelity: server state
lives in NumPy arrays and time advances in fixed arrival-batch ticks,
so the per-request cost is a handful of vectorized operations amortized
over the batch.

Model (simulation model only, workers=1, homogeneous speeds):

- Requests arrive at ``cumsum(gaps)`` exactly as in the exact engines
  (same ``workload`` substream, same load rescaling), dispatch after the
  policy's constant selection latency (0 for random/broadcast/stale_jsq,
  one UDP round trip for polling), travel one request one-way latency,
  queue FIFO, and complete via the per-server Lindley recursion
  ``start = max(server_arrival, server_free)``.
- Queue lengths, broadcast tables, and stale-JSQ snapshots are arrays
  updated at tick boundaries: a selection inside a tick sees server
  state as of the tick start. The tick defaults to 1/8 of the smallest
  relevant timescale (mean service time, broadcast interval, snapshot
  interval), so the induced decision staleness is small against the
  staleness the policies already model.
- All randomness draws from the same named substreams as the exact
  engines (``policy.random``, ``policy.polling``,
  ``policy.broadcast.{ties,intervals}``, ``policy.stale.ties``), so each
  (seed, policy, size) cell is deterministic and seed-comparable.

Validation ladder (DESIGN.md §13): the exact engines stay bit-identical
to each other (tier 1); the fast path is validated against the heap
engine at small N by KS/occupancy agreement (tier 2,
:func:`repro.experiments.parity.distribution_parity`) and against the
mean-field/fluid limit at large N (tier 3,
:mod:`repro.analysis.meanfield`).

Anything the batch model cannot represent — prototype overhead, chaos,
reliability, overload, telemetry, availability soft state, timeouts,
admission bounds, heterogeneous speeds — raises
:class:`FastpathUnsupportedError` so a config never *silently* runs
under the approximate engine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.cluster.system import ClusterMetrics
from repro.core.registry import make_policy
from repro.net.latency import PAPER_NET, PaperNetworkConstants
from repro.sim.rng import RngHub
from repro.workload.workloads import make_workload

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.experiments.config import SimulationConfig

__all__ = [
    "FASTPATH_POLICIES",
    "FastpathRun",
    "FastpathUnsupportedError",
    "fastpath_violations",
    "run_fastpath",
]

#: policies the batch engine can represent
FASTPATH_POLICIES = ("random", "polling", "broadcast", "stale_jsq")

#: tick = (smallest relevant timescale) / _TICK_DIVISOR
_TICK_DIVISOR = 16.0


class FastpathUnsupportedError(ValueError):
    """A config requires exact-engine semantics the batch model lacks."""


def fastpath_violations(config: "SimulationConfig") -> list[str]:
    """Config features the fast path cannot represent (empty = OK).

    Each entry names the offending knob so the error message tells the
    caller exactly what forced the exact engines.
    """
    violations: list[str] = []
    if config.model != "simulation":
        violations.append(f"model={config.model!r} (prototype overhead model)")
    if config.policy not in FASTPATH_POLICIES:
        violations.append(
            f"policy={config.policy!r} (supported: {', '.join(FASTPATH_POLICIES)})"
        )
    if config.policy == "stale_jsq" and config.policy_params.get("local_increment"):
        violations.append("policy_params.local_increment (per-client table state)")
    if config.workers != 1:
        violations.append(f"workers={config.workers} (multi-worker service)")
    if config.server_speeds is not None:
        violations.append("server_speeds (heterogeneous service rates)")
    for key in sorted(set(config.cluster_params) - {"record_server_queues"}):
        violations.append(f"cluster_params.{key}")
    if config.chaos_params:
        violations.append("chaos_params (fault injection)")
    if config.telemetry:
        violations.append("telemetry (per-request span recording)")
    if config.reliability_params:
        violations.append("reliability_params (timeouts/backoff/hedging)")
    if config.overload_params:
        violations.append("overload_params (admission control)")
    if config.dispatcher_params:
        violations.append("dispatcher_params (dispatcher-tier routing)")
    if config.autoscaler_params:
        violations.append("autoscaler_params (closed-loop scaling)")
    if config.verify_params:
        violations.append("verify_params (inline invariant oracle)")
    return violations


def require_fastpath_supported(config: "SimulationConfig") -> None:
    """Raise :class:`FastpathUnsupportedError` listing every offending
    knob (loud fallback — never silently substitute an exact engine)."""
    violations = fastpath_violations(config)
    if violations:
        raise FastpathUnsupportedError(
            "engine='fast' cannot represent this config; re-run with "
            "--engine heap (or calendar). Unsupported: "
            + "; ".join(violations)
        )


@dataclass
class FastpathRun:
    """Everything a fast-path run produces.

    ``metrics`` is a fully populated :class:`ClusterMetrics` (same
    summary path as the exact engines). ``occupancy`` is the
    time-weighted distribution of per-server queue lengths over the
    post-warmup window — ``occupancy[k]`` is the fraction of
    server-time spent with exactly ``k`` requests in system — the
    tier-2 comparison object against the heap engine and the empirical
    counterpart of the mean-field tail ``s_k``.
    """

    metrics: ClusterMetrics
    nominal_rho: float
    ticks: int
    tick_length: float
    occupancy: Optional[np.ndarray]
    message_counts: dict[str, int] = field(default_factory=dict)
    policy_counters: dict[str, int] = field(default_factory=dict)

    @property
    def occupancy_tail(self) -> np.ndarray:
        """``s_k = P[queue length >= k]`` (mean-field's coordinates)."""
        if self.occupancy is None:
            raise ValueError("run_fastpath(record_occupancy=True) required")
        return np.concatenate(([1.0], 1.0 - np.cumsum(self.occupancy)[:-1]))


def _distinct_candidates(
    rng: np.random.Generator, n_batch: int, d: int, n_servers: int
) -> np.ndarray:
    """``(n_batch, d)`` rows of distinct server ids, uniform like the
    exact engine's rejection sampler."""
    if d >= n_servers:
        return np.broadcast_to(np.arange(n_servers), (n_batch, n_servers)).copy()
    cand = rng.integers(0, n_servers, size=(n_batch, d))
    if d > 1:
        while True:
            ordered = np.sort(cand, axis=1)
            dup = (ordered[:, 1:] == ordered[:, :-1]).any(axis=1)
            if not dup.any():
                break
            cand[dup] = rng.integers(0, n_servers, size=(int(dup.sum()), d))
    return cand


def _exact_occupancy(
    server_arrival: np.ndarray,
    completion: np.ndarray,
    choice: np.ndarray,
    n_servers: int,
    t0: float,
    t1: float,
) -> np.ndarray:
    """Exact time-weighted distribution of per-server queue lengths.

    Reconstructed post-hoc from the assignment arrays (+1 at server
    arrival, −1 at completion), so it carries no tick-sampling error:
    ``result[k]`` is the exact fraction of server-time in ``[t0, t1]``
    spent with ``k`` requests in system, matching the heap engine's
    ``StepRecorder`` semantics (queued + in service).
    """
    if t1 <= t0:
        return np.array([1.0])
    n = choice.shape[0]
    times = np.concatenate((server_arrival, completion))
    deltas = np.concatenate((np.ones(n, dtype=np.int64), -np.ones(n, dtype=np.int64)))
    servers = np.concatenate((choice, choice)).astype(np.int64)
    order = np.lexsort((times, servers))
    t_sorted = times[order]
    s_sorted = servers[order]
    level = np.cumsum(deltas[order])
    boundary = np.empty(2 * n, dtype=bool)
    boundary[0] = True
    np.not_equal(s_sorted[1:], s_sorted[:-1], out=boundary[1:])
    seg_start = np.flatnonzero(boundary)
    # Restart the running level at each server boundary.
    prev = np.concatenate(([0], level[:-1]))
    seg_sizes = np.diff(np.append(seg_start, 2 * n))
    level = level - np.repeat(prev[seg_start], seg_sizes)
    # Each event's level holds until the next event on the same server;
    # a server's last event holds until the window end.
    hold_until = np.empty(2 * n)
    hold_until[:-1] = t_sorted[1:]
    hold_until[-1] = t1
    hold_until[seg_start - 1] = t1  # seg_start[0]-1 wraps to the final event
    duration = np.clip(hold_until, t0, t1) - np.clip(t_sorted, t0, t1)
    # Simultaneous events on one server can transiently order a
    # completion before an unrelated arrival (level −1 for zero
    # duration); clamp for bincount.
    hist = np.bincount(np.maximum(level, 0), weights=duration)
    # Level-0 time before each server's first event, plus the whole
    # window for servers that never received a request.
    first_t = np.clip(t_sorted[seg_start], t0, t1)
    hist[0] += float((first_t - t0).sum()) + (n_servers - seg_start.size) * (t1 - t0)
    return hist / hist.sum()


def _lindley_assign(
    free: np.ndarray,
    choice: np.ndarray,
    server_arrival: np.ndarray,
    service: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """FIFO completion times for one batch of assignments.

    Jobs hitting the same server within a batch are serialized in
    arrival order via occurrence-rank rounds: round ``r`` processes each
    server's ``r``-th job of the batch, so every round is a pure
    vectorized ``max``/add over unique servers. ``free`` is updated in
    place. Returns ``(start, completion)`` per job.
    """
    n = choice.shape[0]
    start = np.empty(n)
    completion = np.empty(n)
    order = np.argsort(choice, kind="stable")
    sorted_choice = choice[order]
    boundary = np.empty(n, dtype=bool)
    boundary[0] = True
    np.not_equal(sorted_choice[1:], sorted_choice[:-1], out=boundary[1:])
    group_start = np.flatnonzero(boundary)
    group_sizes = np.diff(np.append(group_start, n))
    # Groups are contiguous in `order`, so round r's jobs sit at
    # group_start + r of the still-active groups — each round is O(active
    # groups), O(n) total, instead of an O(n) scan per round.
    for rank in range(int(group_sizes.max())):
        active = group_sizes > rank
        idx = order[group_start[active] + rank]
        servers = choice[idx]
        begin = np.maximum(server_arrival[idx], free[servers])
        finish = begin + service[idx]
        free[servers] = finish
        start[idx] = begin
        completion[idx] = finish
        group_start = group_start[active]
        group_sizes = group_sizes[active]
    return start, completion


def run_fastpath(
    config: "SimulationConfig",
    tick: Optional[float] = None,
    constants: PaperNetworkConstants = PAPER_NET,
    record_occupancy: bool = True,
) -> FastpathRun:
    """Run one supported config under the vectorized batch engine.

    ``record_occupancy=False`` skips the post-hoc occupancy
    reconstruction (an O(n log n) sort) for throughput-only runs; the
    result's ``occupancy`` is then ``None``.
    """
    require_fastpath_supported(config)
    # Instantiating the real policy object validates policy_params
    # exactly as the exact engines would (bad poll_size, missing
    # mean_interval, ...) and hands us its canonical attributes.
    policy = make_policy(config.policy, **config.policy_params)

    hub = RngHub(config.seed)
    workload = make_workload(config.workload, **config.workload_params)
    gaps, services = workload.generate(hub.stream("workload"), config.n_requests)
    nominal_rho = config.load
    mean_service = float(services.mean())
    target_interval = mean_service / (config.n_servers * nominal_rho)
    gaps = gaps * (target_interval / float(gaps.mean()))
    arrivals = np.cumsum(gaps)

    n = config.n_requests
    n_servers = config.n_servers
    one_way = constants.request_one_way

    # Per-policy selection latency (constant in the simulation model:
    # polls ride two UDP one-ways, instant policies dispatch at arrival).
    kind = config.policy
    poll_size = 0
    degenerate_discard = False
    if kind == "polling":
        poll_size = min(policy.poll_size, n_servers)
        dispatch_offset = constants.udp_rtt
        discard_timeout = (
            policy.discard_timeout
            if policy.discard_timeout is not None
            else constants.discard_timeout
        )
        # With constant latencies every reply lands at +udp_rtt, so the
        # §3.2 discard machinery only bites when the deadline beats the
        # round trip — then zero replies are in and the *first* reply
        # (the first poll sent) decides, i.e. a uniform random pick.
        degenerate_discard = policy.discard_slow and discard_timeout < constants.udp_rtt
    else:
        dispatch_offset = 0.0
    server_arrival = arrivals + (dispatch_offset + one_way)

    # Tick: 1/_TICK_DIVISOR of the smallest timescale that selection
    # state evolves on. Small N runs degrade toward per-arrival batches
    # (slow but maximally faithful — exactly where tier-2 validates);
    # large N runs pack hundreds of arrivals per tick.
    if tick is None:
        base = mean_service if mean_service > 0 else target_interval * n_servers
        if kind == "broadcast":
            base = min(base, policy.mean_interval)
        elif kind == "stale_jsq":
            base = min(base, policy.update_interval)
        tick = base / _TICK_DIVISOR
    if tick <= 0:
        raise ValueError(f"tick must be > 0, got {tick}")

    # Policy state + substreams (same names as the exact engines).
    if kind == "random":
        rng_policy = hub.stream("policy.random")
    elif kind == "polling":
        rng_policy = hub.stream("policy.polling")
    elif kind == "broadcast":
        rng_ties = hub.stream("policy.broadcast.ties")
        rng_intervals = hub.stream("policy.broadcast.intervals")
        table = np.zeros(n_servers)
        next_announce = (
            rng_intervals.uniform(0.5, 1.5, size=n_servers) * policy.mean_interval
        )
        broadcasts_sent = 0
    else:  # stale_jsq
        rng_ties = hub.stream("policy.stale.ties")
        snapshot = np.zeros(n_servers)
        next_refresh = policy.update_interval
        refreshes = 0

    # Server state.
    free = np.zeros(n_servers)  # work-drain time per server
    qlen = np.zeros(n_servers, dtype=np.int64)  # queued + in service
    pend_completion = np.empty(0)
    pend_server = np.empty(0, dtype=np.int64)

    metrics = ClusterMetrics(n)
    metrics.arrival_time[:] = arrivals
    metrics.poll_time[:] = 0.0 if kind != "polling" else constants.udp_rtt

    # Random never reads server state, so the whole run is one exact
    # batch — its response times match the heap engine's exactly.
    window = math.inf if kind == "random" else float(tick)
    skip_ahead = kind in ("random", "polling")  # no timed control state
    t = float(tick) * math.floor(float(arrivals[0]) / tick)
    i0 = 0
    ticks = 0
    while i0 < n:
        ticks += 1
        t_end = t + window

        # 1. Completions up to the tick start leave the system.
        if pend_completion.size:
            done = pend_completion <= t
            if done.any():
                qlen -= np.bincount(pend_server[done], minlength=n_servers)
                keep = ~done
                pend_completion = pend_completion[keep]
                pend_server = pend_server[keep]

        # 2. Timed control state due inside this tick.
        if kind == "broadcast":
            while True:
                due = next_announce < t_end
                if not due.any():
                    break
                table[due] = qlen[due]
                broadcasts_sent += int(due.sum())
                next_announce[due] += (
                    rng_intervals.uniform(0.5, 1.5, size=int(due.sum()))
                    * policy.mean_interval
                )
        elif kind == "stale_jsq":
            while next_refresh < t_end:
                snapshot[:] = qlen
                refreshes += 1
                next_refresh += policy.update_interval

        # 3. Select + assign this tick's arrivals.
        i1 = int(np.searchsorted(arrivals, t_end, side="left"))
        if i1 > i0:
            batch = slice(i0, i1)
            n_batch = i1 - i0
            if kind == "random":
                choice = rng_policy.integers(0, n_servers, size=n_batch)
            elif kind == "polling":
                cand = _distinct_candidates(rng_policy, n_batch, poll_size, n_servers)
                if degenerate_discard:
                    choice = cand[:, 0]
                else:
                    # Integer queue lengths + U[0,1) noise == uniform
                    # tie-breaking among minima (choose_min_with_ties).
                    keys = qlen[cand] + rng_policy.random(cand.shape)
                    choice = cand[np.arange(n_batch), np.argmin(keys, axis=1)]
            else:
                view = table if kind == "broadcast" else snapshot
                minima = np.flatnonzero(view == view.min())
                choice = minima[rng_ties.integers(0, minima.size, size=n_batch)]

            start, completion = _lindley_assign(
                free, choice, server_arrival[batch], services[batch]
            )
            if i1 < n:  # final batch: no later selection reads state
                qlen += np.bincount(choice, minlength=n_servers)
                pend_completion = np.concatenate((pend_completion, completion))
                pend_server = np.concatenate((pend_server, choice))

            metrics.response_time[batch] = completion + one_way - arrivals[batch]
            metrics.queue_wait[batch] = start - server_arrival[batch]
            metrics.server_id[batch] = choice
            i0 = i1

        t = t_end
        if skip_ahead and i0 < n:
            # Jump empty stretches (no timed control state to replay).
            t_next_arrival = float(tick) * math.floor(float(arrivals[i0]) / tick)
            if t_next_arrival > t:
                t = t_next_arrival

    # Exact occupancy over the post-warmup arrival window, reconstructed
    # from the completed assignment (no tick-sampling error).
    occupancy = None
    if record_occupancy:
        warmup_index = int(n * config.warmup_fraction)
        occupancy = _exact_occupancy(
            server_arrival,
            metrics.response_time + arrivals - one_way,
            metrics.server_id,
            n_servers,
            float(arrivals[min(warmup_index, n - 1)]),
            float(arrivals[-1]),
        )

    message_counts = {"request": n, "response": n}
    policy_counters: dict[str, int] = {}
    if kind == "polling":
        message_counts["poll"] = poll_size * n
        message_counts["poll_reply"] = poll_size * n
        if degenerate_discard:
            policy_counters = {
                "polls_sent": poll_size * n,
                "replies_received": n,
                "replies_discarded": (poll_size - 1) * n,
                "timeouts_fired": n,
            }
        else:
            policy_counters = {
                "polls_sent": poll_size * n,
                "replies_received": poll_size * n,
                "replies_discarded": 0,
                "timeouts_fired": 0,
            }
    elif kind == "broadcast":
        message_counts["broadcast"] = broadcasts_sent * config.n_clients
        policy_counters = {"broadcasts_sent": broadcasts_sent}
    elif kind == "stale_jsq":
        policy_counters = {"refreshes": refreshes}

    return FastpathRun(
        metrics=metrics,
        nominal_rho=nominal_rho,
        ticks=ticks,
        tick_length=float(tick),
        occupancy=occupancy,
        message_counts=message_counts,
        policy_counters=policy_counters,
    )
