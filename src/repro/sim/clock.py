"""The Clock seam between simulated and wall-clock runtimes.

Every component under ``repro.cluster`` / ``repro.net`` that needs time
or timers (circuit-breaker lazy transitions, retry backoff, overload
interval checks, soft-state TTL expiry, poll discard timers) already
consults an *injected* scheduler object rather than a global. This
module names that contract: :class:`Clock` is the structural protocol
those components actually require, and :class:`Simulator` satisfies it
with simulated time.

Two additional implementations exist:

* :class:`ManualClock` (here) — a hand-cranked clock for unit tests,
  notably with a **non-zero origin**, so tests can prove that a
  component works when time does not start at ``0.0`` (the wall-clock
  regime: ``loop.time()`` origins are arbitrary).
* ``repro.live.clock.WallClock`` — monotonic wall-clock time backed by
  an asyncio event loop, used by ``repro serve`` / ``repro drive``.

The protocol is intentionally the *narrow* surface shared by all
three; anything wider (``run()``, ``peek()``, event counters) is
engine-specific and must not be relied on by cluster/net code.
"""

from __future__ import annotations

from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Callable, List, Optional, Protocol, Tuple, runtime_checkable

__all__ = ["Clock", "ClockHandle", "ManualClock", "ManualHandle"]

_SENTINEL = object()


@runtime_checkable
class ClockHandle(Protocol):
    """A cancellable scheduled callback.

    ``time`` is the absolute fire time on the owning clock; ``cancelled``
    is readable (some call sites inspect it for idempotent teardown).
    """

    time: float
    cancelled: bool

    def cancel(self) -> None: ...


@runtime_checkable
class Clock(Protocol):
    """The time/timer surface cluster and net components depend on.

    Implementations: ``repro.sim.engine.Simulator`` (simulated time),
    ``repro.sim.clock.ManualClock`` (hand-cranked test time), and
    ``repro.live.clock.WallClock`` (asyncio monotonic wall time).

    Contract notes, shared by all implementations:

    * ``now`` is monotonic non-decreasing, in float seconds, with an
      **arbitrary origin** — components must only ever compare or
      subtract timestamps from the same clock, never assume ``now``
      starts at ``0.0``.
    * ``after`` rejects negative delays; ``call_soon`` schedules at the
      current time but never runs the callback synchronously.
    * ``cancel`` is idempotent and safe after the handle fired.
    """

    @property
    def now(self) -> float: ...

    def at(self, time: float, fn: Callable[..., Any], arg: Any = ...) -> Any: ...

    def after(self, delay: float, fn: Callable[..., Any], arg: Any = ...) -> Any: ...

    def call_soon(self, fn: Callable[..., Any], arg: Any = ...) -> Any: ...

    def cancel(self, handle: Any) -> None: ...


class ManualHandle:
    """Scheduled callback on a :class:`ManualClock` (mirrors EventHandle)."""

    __slots__ = ("time", "seq", "fn", "arg", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], arg: Any):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.arg = arg
        self.cancelled = False

    def cancel(self) -> None:
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<ManualHandle t={self.time:.6f} seq={self.seq} {state}>"


class ManualClock:
    """A hand-cranked :class:`Clock` for seam tests.

    Unlike :class:`~repro.sim.engine.Simulator`, the origin is a
    constructor argument: ``ManualClock(origin=1.7e9)`` starts time at
    a wall-clock-like epoch offset, which is how the seam tests prove
    that breaker/TTL/backoff/overload logic never assumes ``t=0``.

    ``advance(dt)`` moves time forward, firing due callbacks in
    ``(time, seq)`` order with ``now`` set to each callback's fire time
    (exactly like the simulator's event loop).
    """

    def __init__(self, origin: float = 0.0) -> None:
        self._now = float(origin)
        self._seq = 0
        self._heap: List[Tuple[float, int, ManualHandle]] = []

    @property
    def now(self) -> float:
        return self._now

    def at(self, time: float, fn: Callable[..., Any], arg: Any = _SENTINEL) -> ManualHandle:
        if time < self._now:
            raise ValueError(
                f"cannot schedule into the past (now={self._now!r}, requested={time!r})"
            )
        self._seq += 1
        handle = ManualHandle(time, self._seq, fn, arg)
        _heappush(self._heap, (time, self._seq, handle))
        return handle

    def after(self, delay: float, fn: Callable[..., Any], arg: Any = _SENTINEL) -> ManualHandle:
        if delay < 0:
            raise ValueError(f"negative delay: {delay!r}")
        return self.at(self._now + delay, fn, arg)

    def call_soon(self, fn: Callable[..., Any], arg: Any = _SENTINEL) -> ManualHandle:
        return self.at(self._now, fn, arg)

    def cancel(self, handle: Optional[ManualHandle]) -> None:
        if handle is not None:
            handle.cancelled = True

    # ------------------------------------------------------------------
    # test-driver surface (not part of the Clock protocol)
    # ------------------------------------------------------------------
    def advance(self, dt: float) -> int:
        """Advance time by ``dt`` seconds, firing due callbacks. Returns count fired."""
        if dt < 0:
            raise ValueError(f"cannot advance backwards: {dt!r}")
        return self.run_until(self._now + dt)

    def run_until(self, deadline: float) -> int:
        """Advance to ``deadline``, firing every callback due on the way."""
        if deadline < self._now:
            raise ValueError(
                f"cannot run backwards (now={self._now!r}, deadline={deadline!r})"
            )
        fired = 0
        heap = self._heap
        while heap and heap[0][0] <= deadline:
            _, _, handle = _heappop(heap)
            if handle.cancelled:
                continue
            self._now = handle.time
            fired += 1
            if handle.arg is _SENTINEL:
                handle.fn()
            else:
                handle.fn(handle.arg)
        self._now = deadline
        return fired

    @property
    def pending(self) -> int:
        return sum(1 for _, _, h in self._heap if not h.cancelled)
