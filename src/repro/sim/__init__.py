"""Discrete-event simulation kernel.

This subpackage provides the event-driven substrate used by every other
part of :mod:`repro`:

- :class:`~repro.sim.engine.Simulator` — a flat binary-heap event
  scheduler with lazy cancellation (the hot path).
- :class:`~repro.sim.calendar.CalendarSimulator` — a self-resizing
  calendar-queue scheduler with the same API and bit-identical event
  ordering; pick one via :func:`~repro.sim.calendar.make_simulator`.
- :class:`~repro.sim.events.Signal` and combinators — one-shot waitable
  events for the process layer.
- :class:`~repro.sim.process.Process` — generator-based processes layered
  on top of the callback scheduler (convenient, kept off hot paths).
- :mod:`~repro.sim.resources` — counted resources and FIFO stores.
- :mod:`~repro.sim.rng` — named, deterministic random substreams.
- :mod:`~repro.sim.monitor` — NumPy-backed time-series and tally
  recorders.
"""

from repro.sim.engine import EventHandle, Simulator, SimulationError
from repro.sim.calendar import CalendarSimulator, DEFAULT_ENGINE, ENGINES, make_simulator
from repro.sim.clock import Clock, ClockHandle, ManualClock, ManualHandle
from repro.sim.events import AllOf, AnyOf, Signal
from repro.sim.process import Process
from repro.sim.resources import Resource, Store
from repro.sim.rng import RngHub, substream_seed
from repro.sim.monitor import GrowableArray, StepRecorder, TallyRecorder
from repro.sim.tracing import EventTrace, TraceRecord

__all__ = [
    "AllOf",
    "AnyOf",
    "CalendarSimulator",
    "Clock",
    "ClockHandle",
    "ManualClock",
    "ManualHandle",
    "DEFAULT_ENGINE",
    "ENGINES",
    "EventHandle",
    "EventTrace",
    "GrowableArray",
    "Process",
    "Resource",
    "RngHub",
    "Signal",
    "SimulationError",
    "Simulator",
    "StepRecorder",
    "make_simulator",
    "Store",
    "TallyRecorder",
    "TraceRecord",
    "substream_seed",
]
