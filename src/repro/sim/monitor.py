"""NumPy-backed measurement recorders.

Per-request metrics can number in the millions per experiment, so
recorders append into amortized-doubling ``float64`` buffers rather than
Python lists, and summaries are vectorized reductions.
"""

from __future__ import annotations

import numpy as np

__all__ = ["GrowableArray", "StepRecorder", "TallyRecorder", "step_occupancy"]


class GrowableArray:
    """An append-only float64 buffer with amortized-doubling growth."""

    __slots__ = ("_data", "_size")

    def __init__(self, initial_capacity: int = 1024):
        if initial_capacity < 1:
            raise ValueError("initial_capacity must be >= 1")
        self._data = np.empty(initial_capacity, dtype=np.float64)
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def append(self, value: float) -> None:
        if self._size == self._data.shape[0]:
            self._grow(self._size * 2)
        self._data[self._size] = value
        self._size += 1

    def extend(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=np.float64)
        needed = self._size + values.shape[0]
        if needed > self._data.shape[0]:
            self._grow(max(needed, self._data.shape[0] * 2))
        self._data[self._size : needed] = values
        self._size = needed

    def _grow(self, capacity: int) -> None:
        data = np.empty(capacity, dtype=np.float64)
        data[: self._size] = self._data[: self._size]
        self._data = data

    def view(self) -> np.ndarray:
        """A read-only *view* (no copy) of the recorded values."""
        out = self._data[: self._size]
        out.flags.writeable = False
        return out

    def array(self) -> np.ndarray:
        """An owning copy of the recorded values."""
        return self._data[: self._size].copy()


class TallyRecorder:
    """Records independent observations (e.g. response times)."""

    __slots__ = ("_values",)

    def __init__(self) -> None:
        self._values = GrowableArray()

    def __len__(self) -> int:
        return len(self._values)

    def record(self, value: float) -> None:
        self._values.append(value)

    def values(self) -> np.ndarray:
        return self._values.view()

    def mean(self) -> float:
        values = self._values.view()
        return float(values.mean()) if values.size else float("nan")

    def std(self) -> float:
        values = self._values.view()
        return float(values.std(ddof=1)) if values.size > 1 else float("nan")

    def percentile(self, q: float) -> float:
        values = self._values.view()
        return float(np.percentile(values, q)) if values.size else float("nan")


class StepRecorder:
    """Records a right-continuous step function, e.g. a queue length.

    ``record(t, v)`` appends a breakpoint: the function takes value ``v``
    on ``[t, next_t)``. Queries are vectorized via ``searchsorted``.
    """

    __slots__ = ("_times", "_values", "initial")

    def __init__(self, initial: float = 0.0):
        self._times = GrowableArray()
        self._values = GrowableArray()
        self.initial = initial

    def __len__(self) -> int:
        return len(self._times)

    def record(self, time: float, value: float) -> None:
        if len(self._times) and time < self._times.view()[-1]:
            raise ValueError(
                f"non-monotone record time {time!r} < {self._times.view()[-1]!r}"
            )
        self._times.append(time)
        self._values.append(value)

    def breakpoints(self) -> tuple[np.ndarray, np.ndarray]:
        """``(times, values)`` views of the breakpoints."""
        return self._times.view(), self._values.view()

    def value_at(self, times: np.ndarray) -> np.ndarray:
        """Evaluate the step function at (an array of) query times."""
        times = np.atleast_1d(np.asarray(times, dtype=np.float64))
        bp_t = self._times.view()
        bp_v = self._values.view()
        if bp_t.size == 0:
            # np.where evaluates both branches eagerly, so the fancy
            # index below would fail on an empty recorder even though
            # every query resolves to ``initial``.
            return np.full(times.shape, self.initial)
        idx = np.searchsorted(bp_t, times, side="right") - 1
        out = np.where(idx >= 0, bp_v[np.clip(idx, 0, None)], self.initial)
        return out

    def time_average(self, t0: float, t1: float) -> float:
        """Time-weighted average of the step function on ``[t0, t1]``."""
        if t1 <= t0:
            raise ValueError(f"empty interval [{t0}, {t1}]")
        bp_t = self._times.view()
        bp_v = self._values.view()
        if bp_t.size == 0:
            return self.initial
        # Clip breakpoints into the window, adding the value in force at t0.
        start_idx = np.searchsorted(bp_t, t0, side="right") - 1
        initial = bp_v[start_idx] if start_idx >= 0 else self.initial
        inside = (bp_t > t0) & (bp_t < t1)
        times = np.concatenate(([t0], bp_t[inside], [t1]))
        values = np.concatenate(([initial], bp_v[inside]))
        durations = np.diff(times)
        return float(np.dot(values, durations) / (t1 - t0))


def step_occupancy(
    recorder: StepRecorder, t0: float, t1: float, minlength: int = 0
) -> np.ndarray:
    """Time-weighted histogram of a :class:`StepRecorder`'s integer
    values over ``[t0, t1]``.

    ``result[k]`` is the total time the step function spent at value
    ``k`` — for a server queue-length recorder, the un-normalized
    occupancy distribution compared against the fast path's
    (DESIGN.md §13 tier 2). Sum histograms across servers, then
    normalize.
    """
    if t1 <= t0:
        raise ValueError(f"empty interval [{t0}, {t1}]")
    bp_t, bp_v = recorder.breakpoints()
    if bp_t.size == 0:
        level = max(int(recorder.initial), 0)
        hist = np.zeros(max(minlength, level + 1))
        hist[level] = t1 - t0
        return hist
    start_idx = np.searchsorted(bp_t, t0, side="right") - 1
    initial = bp_v[start_idx] if start_idx >= 0 else recorder.initial
    inside = (bp_t > t0) & (bp_t < t1)
    times = np.concatenate(([t0], bp_t[inside], [t1]))
    values = np.concatenate(([initial], bp_v[inside]))
    durations = np.diff(times)
    levels = np.maximum(values.astype(np.int64), 0)
    return np.bincount(levels, weights=durations, minlength=minlength)
