"""One-shot waitable events (signals) and combinators.

A :class:`Signal` is a one-shot event: it can be *succeeded* (with an
optional value) or *failed* (with an exception) exactly once; callbacks
registered before or after triggering are invoked exactly once each.
Signals are what the process layer (:mod:`repro.sim.process`) suspends
on, and what asynchronous substrates (network transports, resources)
hand back to callers.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Optional

from repro.sim.engine import SimulationError, Simulator

__all__ = ["Signal", "AllOf", "AnyOf"]


class Signal:
    """A one-shot waitable event.

    Callbacks receive the signal itself; inspect :attr:`value` /
    :attr:`exception` for the outcome. Triggering is immediate (same
    event-loop turn) — use :meth:`succeed_later` to defer through the
    simulator heap.
    """

    __slots__ = ("sim", "_callbacks", "triggered", "value", "exception", "name")

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._callbacks: Optional[list[Callable[["Signal"], None]]] = []
        self.triggered = False
        self.value: Any = None
        self.exception: Optional[BaseException] = None

    @property
    def ok(self) -> bool:
        """True once the signal has succeeded (not failed)."""
        return self.triggered and self.exception is None

    def add_callback(self, fn: Callable[["Signal"], None]) -> None:
        """Register ``fn``; runs immediately if already triggered."""
        if self.triggered:
            fn(self)
        else:
            assert self._callbacks is not None
            self._callbacks.append(fn)

    def _fire(self) -> None:
        callbacks = self._callbacks
        self._callbacks = None
        self.triggered = True
        if callbacks:
            for fn in callbacks:
                fn(self)

    def succeed(self, value: Any = None) -> "Signal":
        """Trigger the signal successfully with ``value``."""
        if self.triggered:
            raise SimulationError(f"signal {self.name!r} already triggered")
        self.value = value
        self._fire()
        return self

    def fail(self, exception: BaseException) -> "Signal":
        """Trigger the signal with an exception (propagated to waiters)."""
        if self.triggered:
            raise SimulationError(f"signal {self.name!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() needs an exception, got {exception!r}")
        self.exception = exception
        self._fire()
        return self

    def succeed_later(self, delay: float, value: Any = None) -> "Signal":
        """Schedule success after ``delay`` simulated seconds."""
        self.sim.after(delay, lambda: self.succeed(value))
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        return f"<Signal {self.name!r} {state}>"


class AllOf(Signal):
    """Succeeds when all child signals have triggered.

    The value is the list of child values (in constructor order). Fails
    fast with the first child exception.
    """

    __slots__ = ("_remaining", "_children")

    def __init__(self, sim: Simulator, signals: Iterable[Signal], name: str = "all_of"):
        super().__init__(sim, name)
        self._children = list(signals)
        self._remaining = len(self._children)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self._children:
            child.add_callback(self._on_child)

    def _on_child(self, child: Signal) -> None:
        if self.triggered:
            return
        if child.exception is not None:
            self.fail(child.exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c.value for c in self._children])


class AnyOf(Signal):
    """Succeeds when the first child signal triggers.

    The value is ``(index, value)`` of the first triggering child.
    """

    __slots__ = ("_children",)

    def __init__(self, sim: Simulator, signals: Iterable[Signal], name: str = "any_of"):
        super().__init__(sim, name)
        self._children = list(signals)
        if not self._children:
            raise SimulationError("AnyOf needs at least one signal")
        for index, child in enumerate(self._children):
            child.add_callback(lambda c, i=index: self._on_child(i, c))

    def _on_child(self, index: int, child: Signal) -> None:
        if self.triggered:
            return
        if child.exception is not None:
            self.fail(child.exception)
            return
        self.succeed((index, child.value))
