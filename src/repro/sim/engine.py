"""Core event scheduler.

The scheduler is intentionally minimal: a binary heap of
:class:`EventHandle` objects ordered by ``(time, seq)``, with lazy
cancellation (cancelled handles stay in the heap and are skipped when
popped). This is the hot path of every experiment, so handles use
``__slots__`` and scheduling does no allocation beyond the handle itself.
"""

from __future__ import annotations

import math

# Bound once at import: LOAD_GLOBAL on these beats the LOAD_GLOBAL +
# LOAD_ATTR pair on ``heapq.heappush``/``heapq.heappop``, which run once
# per event (profile-guided, bench_poll_profile.py).
from heapq import heappop as _heappop, heappush as _heappush
from typing import Any, Callable, Optional

__all__ = ["EventHandle", "Simulator", "SimulationError"]


class SimulationError(RuntimeError):
    """Raised for scheduler misuse (e.g. scheduling into the past)."""


class EventHandle:
    """A scheduled callback; compare by ``(time, seq)`` for heap order.

    ``seq`` breaks ties so that events scheduled earlier at the same
    timestamp fire first (deterministic FIFO ordering at equal times).
    """

    __slots__ = ("time", "seq", "fn", "arg", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], arg: Any):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.arg = arg
        self.cancelled = False

    def __lt__(self, other: "EventHandle") -> bool:
        if self.time != other.time:
            return self.time < other.time
        return self.seq < other.seq

    def cancel(self) -> None:
        """Mark the event as cancelled; it will be skipped when popped."""
        self.cancelled = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time:.6f} seq={self.seq} {state} {self.fn!r}>"


_SENTINEL = object()


class Simulator:
    """A discrete-event simulator clock + event heap.

    Time is a float in **seconds**. All scheduling is relative to the
    simulator's own clock; the simulator never observes wall-clock time.

    Example
    -------
    >>> sim = Simulator()
    >>> fired = []
    >>> _ = sim.after(1.5, fired.append, "a")
    >>> _ = sim.after(0.5, fired.append, "b")
    >>> sim.run()
    >>> fired
    ['b', 'a']
    >>> sim.now
    1.5
    """

    __slots__ = ("_heap", "_now", "_seq", "_pending", "_events_executed", "trace")

    def __init__(self) -> None:
        self._heap: list[EventHandle] = []
        self._now: float = 0.0
        self._seq: int = 0
        self._pending: int = 0  # live (non-cancelled) events in the heap
        self._events_executed: int = 0
        #: optional callable(time, handle) invoked before each event runs
        self.trace: Optional[Callable[[float, EventHandle], None]] = None

    # ------------------------------------------------------------------
    # clock & introspection
    # ------------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of live (non-cancelled) scheduled events."""
        return self._pending

    @property
    def events_executed(self) -> int:
        """Total number of events executed so far."""
        return self._events_executed

    def peek(self) -> float:
        """Time of the next live event, or ``inf`` if none remain."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            _heappop(heap)
        return heap[0][0] if heap else math.inf

    # ------------------------------------------------------------------
    # scheduling
    # ------------------------------------------------------------------
    def at(self, time: float, fn: Callable[..., Any], arg: Any = _SENTINEL) -> EventHandle:
        """Schedule ``fn`` (optionally with one argument) at absolute ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule into the past (now={self._now!r}, requested={time!r})"
            )
        self._seq += 1
        handle = EventHandle(time, self._seq, fn, arg)
        # Heap entries are (time, seq, handle) tuples: comparisons run in
        # C (floats/ints) instead of calling EventHandle.__lt__ ~1M times
        # per million events (profile-guided; ~8% of a polling run).
        _heappush(self._heap, (time, self._seq, handle))
        self._pending += 1
        return handle

    def after(self, delay: float, fn: Callable[..., Any], arg: Any = _SENTINEL) -> EventHandle:
        """Schedule ``fn`` after a relative ``delay`` (must be >= 0)."""
        if delay < 0:
            raise SimulationError(f"negative delay: {delay!r}")
        return self.at(self._now + delay, fn, arg)

    def call_soon(self, fn: Callable[..., Any], arg: Any = _SENTINEL) -> EventHandle:
        """Schedule ``fn`` at the current time (after already-queued events)."""
        return self.at(self._now, fn, arg)

    def cancel(self, handle: EventHandle) -> None:
        """Cancel a previously scheduled handle (idempotent)."""
        if not handle.cancelled:
            handle.cancelled = True
            self._pending -= 1

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Execute the next live event. Returns False if none remain."""
        heap = self._heap
        while heap:
            handle = _heappop(heap)[2]
            if handle.cancelled:
                continue
            self._pending -= 1
            self._now = handle.time
            self._events_executed += 1
            if self.trace is not None:
                self.trace(self._now, handle)
            arg = handle.arg
            if arg is _SENTINEL:
                handle.fn()
            else:
                handle.fn(arg)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> None:
        """Run events until the heap empties, ``until`` is reached, or
        ``max_events`` have executed.

        When ``until`` is given, the clock is advanced to exactly
        ``until`` at exit (even if the last event fired earlier), and
        events scheduled at exactly ``until`` *do* execute.
        """
        heap = self._heap
        heappop = _heappop
        sentinel = _SENTINEL
        budget = math.inf if max_events is None else max_events
        limit = math.inf if until is None else until
        executed = 0
        popped = 0
        # The loop keeps ``executed``/``popped`` in locals and commits
        # them to the instance in ``finally`` (callbacks can abort the
        # run by raising, e.g. the cluster's run-complete unwind, and
        # the counters must survive that). ``self._now`` is still
        # written before every callback — callbacks read the clock.
        # Nothing on the heap engine branches on ``_pending`` mid-run,
        # so deferring the decrement is observationally safe.
        try:
            while heap and executed < budget:
                entry = heap[0]
                handle = entry[2]
                if handle.cancelled:
                    heappop(heap)
                    continue
                if entry[0] > limit:
                    break
                heappop(heap)
                popped += 1
                self._now = handle.time
                executed += 1
                trace = self.trace
                if trace is not None:
                    trace(self._now, handle)
                arg = handle.arg
                if arg is sentinel:
                    handle.fn()
                else:
                    handle.fn(arg)
        finally:
            self._pending -= popped
            self._events_executed += executed
        if until is not None and self._now < until:
            self._now = until

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Simulator now={self._now:.6f} pending={self._pending}>"
