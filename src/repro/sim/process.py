"""Generator-based simulation processes.

A process is a generator that yields *directives*:

- a ``float``/``int`` — sleep for that many simulated seconds;
- a :class:`~repro.sim.events.Signal` — suspend until it triggers; the
  ``yield`` expression evaluates to the signal's value (or raises its
  exception inside the generator);
- another :class:`Process` — join it (a process *is* a signal that
  succeeds with the generator's return value).

Processes are convenient for tests, examples, and slow-path control
logic (heartbeats, failure injection); the per-request hot paths in
:mod:`repro.cluster` use plain callbacks instead.
"""

from __future__ import annotations

from typing import Any, Generator

from repro.sim.engine import Simulator
from repro.sim.events import Signal

__all__ = ["Process"]


class Process(Signal):
    """Drives a generator through the simulator; succeeds on return.

    Example
    -------
    >>> sim = Simulator()
    >>> def worker():
    ...     yield 1.0
    ...     return "done"
    >>> p = Process(sim, worker())
    >>> sim.run()
    >>> (sim.now, p.value)
    (1.0, 'done')
    """

    __slots__ = ("_generator",)

    def __init__(self, sim: Simulator, generator: Generator[Any, Any, Any], name: str = ""):
        if not hasattr(generator, "send"):
            raise TypeError(
                f"Process needs a generator (did you forget to call the function?): {generator!r}"
            )
        super().__init__(sim, name or getattr(generator, "__name__", "process"))
        self._generator = generator
        sim.call_soon(self._resume, (None, None))

    def interrupt(self, reason: BaseException | None = None) -> None:
        """Throw an exception into the process at its current yield point."""
        if self.triggered:
            return
        exc = reason if reason is not None else ProcessInterrupt("interrupted")
        self.sim.call_soon(self._resume, (None, exc))

    # ------------------------------------------------------------------
    def _resume(self, send: tuple[Any, BaseException | None]) -> None:
        if self.triggered:
            return
        value, exc = send
        try:
            if exc is not None:
                directive = self._generator.throw(exc)
            else:
                directive = self._generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as error:
            self.fail(error)
            return
        self._handle_directive(directive)

    def _handle_directive(self, directive: Any) -> None:
        if isinstance(directive, (int, float)):
            if directive < 0:
                self.sim.call_soon(
                    self._resume, (None, ValueError(f"negative sleep: {directive!r}"))
                )
            else:
                self.sim.after(directive, self._resume, (None, None))
        elif isinstance(directive, Signal):
            directive.add_callback(self._on_signal)
        else:
            self.sim.call_soon(
                self._resume,
                (None, TypeError(f"process yielded unsupported directive: {directive!r}")),
            )

    def _on_signal(self, signal: Signal) -> None:
        # Defer through the heap so resumption order follows scheduling
        # order even when the signal triggers synchronously.
        self.sim.call_soon(self._resume, (signal.value, signal.exception))


class ProcessInterrupt(Exception):
    """Default exception delivered by :meth:`Process.interrupt`."""
