"""Structured event tracing for debugging and validation.

Attach an :class:`EventTrace` to a simulator to capture a bounded,
filtered record of executed events — what fired, when, and how densely.
Used by tests to assert temporal behaviour and by humans to debug
policies ("why did every client dispatch to server 3 at t=1.20?").

The tracer costs one indirect call per event while attached; detach it
(or never attach it) for measurement runs.
"""

from __future__ import annotations

import warnings
from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, Optional

import numpy as np

from repro.sim.engine import EventHandle, Simulator

__all__ = ["EventTrace", "TraceRecord"]


@dataclass(frozen=True)
class TraceRecord:
    """One executed event."""

    time: float
    seq: int
    label: str

    def __str__(self) -> str:
        return f"{self.time:12.6f}s  #{self.seq:<8d} {self.label}"


def _default_label(handle: EventHandle) -> str:
    fn = handle.fn
    name = getattr(fn, "__qualname__", None) or getattr(fn, "__name__", repr(fn))
    return name


class EventTrace:
    """A bounded in-memory trace of executed simulator events.

    Parameters
    ----------
    sim:
        Simulator to attach to (uses the ``Simulator.trace`` hook).
    capacity:
        Ring-buffer size; the most recent ``capacity`` records are kept.
    filter_fn:
        Optional predicate over :class:`EventHandle`; only matching
        events are recorded.
    label_fn:
        Optional custom label extractor.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: int = 10_000,
        filter_fn: Optional[Callable[[EventHandle], bool]] = None,
        label_fn: Optional[Callable[[EventHandle], str]] = None,
    ):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.filter_fn = filter_fn
        self.label_fn = label_fn or _default_label
        # A deque, not a list: ring eviction is popleft() — O(1) — where
        # list.pop(0) made a full trace degrade quadratically per event.
        self._records: Deque[TraceRecord] = deque()
        self._dropped = 0
        self._filtered = 0
        self._attached = False
        self._previous_hook: Optional[Callable] = None
        self.attach()

    # ------------------------------------------------------------------
    def attach(self) -> None:
        if self._attached:
            return
        self._previous_hook = self.sim.trace
        self.sim.trace = self._on_event
        self._attached = True

    def detach(self) -> None:
        if not self._attached:
            return
        self.sim.trace = self._previous_hook
        self._previous_hook = None
        self._attached = False

    def _on_event(self, time: float, handle: EventHandle) -> None:
        if self._previous_hook is not None:
            self._previous_hook(time, handle)
        if self.filter_fn is not None and not self.filter_fn(handle):
            self._filtered += 1
            return
        if len(self._records) >= self.capacity:
            self._records.popleft()
            self._dropped += 1
        self._records.append(TraceRecord(time, handle.seq, self.label_fn(handle)))

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._records)

    @property
    def dropped(self) -> int:
        """Records evicted by the ring buffer."""
        return self._dropped

    @property
    def filtered(self) -> int:
        """Events rejected by ``filter_fn`` (never entered the ring)."""
        return self._filtered

    def records(self) -> list[TraceRecord]:
        return list(self._records)

    def labels(self) -> list[str]:
        return [record.label for record in self._records]

    def times(self) -> np.ndarray:
        return np.array([record.time for record in self._records])

    def between(self, t0: float, t1: float) -> list[TraceRecord]:
        """Records with ``t0 <= time < t1``."""
        return [r for r in self._records if t0 <= r.time < t1]

    def rate(self, window: float) -> float:
        """Mean recorded events/second over the last ``window`` simulated
        seconds.

        Returns ``nan`` (with a ``RuntimeWarning``) when the window
        extends past the oldest retained record while events have been
        dropped — by ring eviction or ``filter_fn`` — because the count
        inside the window can then silently undershoot the truth. Widen
        ``capacity`` or shrink ``window`` to get a trustworthy rate.
        """
        if window <= 0:
            raise ValueError(f"window must be > 0, got {window}")
        cutoff = self.sim.now - window
        records = self._records
        if (self._dropped or self._filtered) and (
            not records or records[0].time > cutoff
        ):
            warnings.warn(
                f"EventTrace.rate(window={window!r}): window extends past the "
                f"oldest retained record but {self._dropped} record(s) were "
                f"evicted and {self._filtered} filtered — the rate would "
                "silently undercount; returning nan",
                RuntimeWarning,
                stacklevel=2,
            )
            return float("nan")
        recent = sum(1 for r in records if r.time >= cutoff)
        return recent / window

    def dump(self, limit: int = 50) -> str:
        """The last ``limit`` records, one per line."""
        lines = [str(record) for record in list(self._records)[-limit:]]
        if self._dropped:
            lines.insert(0, f"... ({self._dropped} earlier records dropped)")
        return "\n".join(lines)
