"""Ablation: is the paper's 10 ms discard threshold the right cutoff?

Sweeps the discard timeout on the prototype model (Fine-Grain trace,
d=3, 90% busy). Expected shape: very small thresholds throw away too
much load information (toward random-quality decisions); very large
thresholds converge to the no-discard baseline; the paper's 10 ms —
one Linux scheduler quantum — sits in the flat optimum between.
"""

from benchmarks.conftest import run_once, scaled
from repro.experiments import SimulationConfig, parallel_sweep
from repro.experiments.runner import full_load_rho_for
from repro.experiments.results import ResultTable

THRESHOLDS = (0.5e-3, 2e-3, 5e-3, 10e-3, 30e-3, 100e-3)


def test_discard_threshold(benchmark, report):
    base = SimulationConfig(
        workload="fine_grain", load=0.9, n_requests=scaled(25_000, minimum=12_000),
        seed=0, model="prototype",
    )
    base = base.with_updates(full_load_rho=full_load_rho_for(base))
    configs = [
        base.with_updates(
            policy="polling",
            policy_params={"poll_size": 3, "discard_slow": True,
                           "discard_timeout": float(t)},
        )
        for t in THRESHOLDS
    ] + [base.with_updates(policy="polling", policy_params={"poll_size": 3})]
    results = run_once(benchmark, lambda: parallel_sweep(configs))

    table = ResultTable(["threshold_ms", "response_ms", "poll_ms"])
    for threshold, result in zip(THRESHOLDS, results):
        table.add(threshold_ms=threshold * 1e3,
                  response_ms=result.mean_response_time_ms,
                  poll_ms=result.mean_poll_time_ms)
    baseline = results[-1]
    table.add(threshold_ms=float("inf"),
              response_ms=baseline.mean_response_time_ms,
              poll_ms=baseline.mean_poll_time_ms)
    report(
        "ablation_discard_threshold",
        "== Discard-threshold sweep (fine-grain, d=3, 90%) ==\n" + table.render(),
    )

    by_threshold = dict(zip(THRESHOLDS, results))
    ten_ms = by_threshold[10e-3].mean_response_time
    # 10ms beats the no-discard baseline (the paper's Table 2 claim).
    assert ten_ms < baseline.mean_response_time
    # Very large thresholds converge back to the baseline.
    assert abs(
        by_threshold[100e-3].mean_response_time - baseline.mean_response_time
    ) < 0.15 * baseline.mean_response_time
    # The paper's quantum-sized cutoff is within 10% of the sweep's best.
    best = min(r.mean_response_time for r in results)
    assert ten_ms < 1.10 * best
