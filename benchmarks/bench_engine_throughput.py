"""Kernel microbenchmarks: event throughput of the DES engine.

These use pytest-benchmark the conventional way (repeated timed rounds)
and exist to keep the hot path honest — the figure benches above are
end-to-end and would hide a 2x kernel regression inside noise.

The three scheduler patterns (timer-heavy, self-scheduling chain,
cancel-heavy) run under **both** event-queue engines, so the calendar
queue is measured against the heap on every bench run rather than
trusted from a one-off experiment. Current standing (see DESIGN.md
"Performance architecture"): the C-implemented ``heapq`` heap wins by
~1.5-1.7x on all three patterns at these sizes, which is why ``heap``
remains the default engine.
"""

import numpy as np
import pytest

from repro.cluster import Request, ServerNode
from repro.sim import ENGINES, Simulator, make_simulator

ENGINE_NAMES = sorted(ENGINES)


@pytest.mark.parametrize("engine", ENGINE_NAMES)
def test_schedule_execute_throughput(benchmark, engine):
    """Raw schedule+execute cycle for 20k timer events."""

    def run():
        sim = make_simulator(engine)
        noop = lambda: None  # noqa: E731
        for i in range(20_000):
            sim.after(i * 1e-6, noop)
        sim.run()
        return sim.events_executed

    events = benchmark(run)
    assert events == 20_000


@pytest.mark.parametrize("engine", ENGINE_NAMES)
def test_event_chain_throughput(benchmark, engine):
    """Self-scheduling chain (the arrival-loop pattern)."""

    def run():
        sim = make_simulator(engine)
        remaining = [20_000]

        def tick():
            remaining[0] -= 1
            if remaining[0]:
                sim.after(1e-6, tick)

        sim.after(1e-6, tick)
        sim.run()
        return sim.events_executed

    assert benchmark(run) == 20_000


@pytest.mark.parametrize("engine", ENGINE_NAMES)
def test_cancel_heavy_workload(benchmark, engine):
    """Half the events cancelled (the timeout-handling pattern)."""

    def run():
        sim = make_simulator(engine)
        handles = [sim.after(i * 1e-6, lambda: None) for i in range(20_000)]
        for handle in handles[::2]:
            sim.cancel(handle)
        sim.run()
        return sim.events_executed

    assert benchmark(run) == 10_000


def test_engine_trajectory_artifact(benchmark, report):
    """Engine x cluster-size throughput -> schema-versioned BENCH_engines.json.

    The persistent perf-trajectory artifact (ISSUE 6): exact engines vs
    the numpy fast path across cluster sizes, validated on write so an
    empty or malformed artifact fails the bench instead of uploading
    garbage. ``REPRO_BENCH_SCALE`` shrinks the request counts.
    """
    from benchmarks.conftest import run_once, scaled

    from repro.experiments.perf import engine_trajectory, render_bench, save_bench

    def build():
        return engine_trajectory(
            sizes=(16, 100, 1000),
            base_requests=scaled(20_000),
            fast_multiplier=10,
        )

    data = run_once(benchmark, build)
    path = save_bench(data, "BENCH_engines.json")
    report("bench_engines", render_bench(data) + f"\n[written to {path}]")
    assert len(data["entries"]) == 9  # 3 engines x 3 sizes


def test_server_node_throughput(benchmark):
    """End-to-end FIFO server servicing 10k requests."""
    rng = np.random.default_rng(0)
    gaps = rng.exponential(1e-3, 10_000)
    arrivals = np.cumsum(gaps)
    services = rng.exponential(0.8e-3, 10_000)

    def run():
        sim = Simulator()
        server = ServerNode(sim, 0)
        done = [0]
        server.on_complete = lambda s, r: done.__setitem__(0, done[0] + 1)
        for i in range(10_000):
            sim.at(float(arrivals[i]), server.enqueue,
                   Request(i, 9, float(services[i]), float(arrivals[i])))
        sim.run()
        return done[0]

    assert benchmark(run) == 10_000
