"""Ablation: admission control under overload (the paper's scope edge).

The paper measures mean response time and explicitly leaves admission
control (and therefore throughput) out of scope (§2). This bench steps
over that edge: drive the cluster at 120% of capacity and compare
unbounded queues against a bounded-queue admission policy. Expected
shape: without admission, latency grows without bound over the run and
nothing is shed; with admission, a fraction of requests is rejected but
accepted requests see bounded, predictable latency — and goodput
(completions within 2 s) is higher.
"""

import numpy as np

from benchmarks.conftest import run_once, scaled
from repro.cluster import ServiceCluster
from repro.core import make_policy
from repro.experiments.results import ResultTable

OVERLOAD = 1.5
MEAN_SERVICE = 0.02
N_SERVERS = 8
DEADLINE = 2.0


def _run(n_requests: int, max_queue, poll_size=2, seed=0):
    cluster = ServiceCluster(
        n_servers=N_SERVERS,
        policy=make_policy("polling", poll_size=poll_size, discard_slow=True),
        seed=seed,
        server_max_queue=max_queue,
        max_retries=4,
    )
    rng = np.random.default_rng(seed)
    gaps = rng.exponential(MEAN_SERVICE / (N_SERVERS * OVERLOAD), n_requests)
    services = rng.exponential(MEAN_SERVICE, n_requests)
    cluster.load_workload(gaps, services)
    metrics = cluster.run()
    finite = np.isfinite(metrics.response_time)
    in_deadline = finite & (metrics.response_time <= DEADLINE)
    return {
        "goodput_fraction": float(in_deadline.mean()),
        "shed_fraction": float(metrics.failed.mean()),
        "accepted_mean_ms": float(metrics.response_time[finite].mean() * 1e3),
        "accepted_p99_ms": float(np.percentile(metrics.response_time[finite], 99) * 1e3),
        "rejections": sum(s.rejected_count for s in cluster.servers),
    }


def test_admission_overload(benchmark, report):
    n = scaled(25_000)

    def run_all():
        return {
            "unbounded": _run(n, max_queue=None),
            "max_queue=20": _run(n, max_queue=20),
            "max_queue=50": _run(n, max_queue=50),
        }

    results = run_once(benchmark, run_all)

    table = ResultTable(
        ["policy", "goodput_fraction", "shed_fraction", "accepted_mean_ms",
         "accepted_p99_ms"]
    )
    for label, row in results.items():
        table.add(policy=label, goodput_fraction=row["goodput_fraction"],
                  shed_fraction=row["shed_fraction"],
                  accepted_mean_ms=row["accepted_mean_ms"],
                  accepted_p99_ms=row["accepted_p99_ms"])
    report(
        "ablation_admission",
        f"== Admission control at {OVERLOAD:.0%} offered load "
        f"(goodput = completed within {DEADLINE:.0f}s) ==\n" + table.render(),
    )

    unbounded = results["unbounded"]
    bounded = results["max_queue=20"]
    # Without admission nothing is shed but latency runs away.
    assert unbounded["shed_fraction"] == 0.0
    assert bounded["rejections"] > 0
    # Admission bounds accepted latency and improves goodput.
    assert bounded["accepted_p99_ms"] < 0.5 * unbounded["accepted_p99_ms"]
    assert bounded["goodput_fraction"] > unbounded["goodput_fraction"]
    # Tighter bound sheds more.
    assert results["max_queue=20"]["shed_fraction"] >= results["max_queue=50"][
        "shed_fraction"
    ]
