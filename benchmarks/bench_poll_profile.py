"""§3.2 poll-delay profile.

Paper: "a typical run under a poll size of 3, a server load index of
90%, and 16 server nodes ... 8.1% of the polls are not completed within
10 ms and 5.6% of them are not completed within 20 ms."
"""

from benchmarks.conftest import run_once, scaled
from repro.experiments.figures import poll_profile_section32


def test_poll_profile(benchmark, report):
    profile, result = run_once(
        benchmark,
        lambda: poll_profile_section32(n_requests=scaled(25_000), seed=0),
    )
    text = (
        "== §3.2 poll profile (d=3, 90% load, 16 servers) ==\n"
        f"{profile.row()}\n"
        f"paper: >10ms: 8.10%   >20ms: 5.60%\n"
        f"(nominal rho at this operating point: {result.nominal_rho:.3f})"
    )
    report("poll_profile", text)

    assert abs(profile.frac_over_10ms - 0.081) < 0.03
    assert abs(profile.frac_over_20ms - 0.056) < 0.025
    assert profile.frac_over_20ms < profile.frac_over_10ms
