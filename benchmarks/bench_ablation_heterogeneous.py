"""Ablation: heterogeneous server speeds (beyond the paper).

The paper's cluster is homogeneous; modern power-of-d deployments
(Envoy/nginx/HAProxy) must handle skewed server speeds. Half the
servers run at 2x speed. Queue-length polling already adapts (fast
servers drain faster, so their queues read shorter); speed-weighted
polling (queue+1)/speed should adapt at least as well, and plain random
— which cannot see speed at all — falls behind.
"""

import numpy as np

from benchmarks.conftest import run_once, scaled
from repro.experiments import SimulationConfig, parallel_sweep
from repro.experiments.results import ResultTable

SPEEDS = tuple([2.0] * 8 + [1.0] * 8)  # mean speed 1.5


def test_heterogeneous(benchmark, report):
    base = SimulationConfig(
        workload="poisson_exp", load=0.85, n_servers=16,
        n_requests=scaled(25_000), seed=0, server_speeds=SPEEDS,
    )
    # Note: the runner computes load against unit speed; with mean speed
    # 1.5 the true utilization is load/1.5, so push load higher.
    specs = [
        ("random", "random", {}),
        ("poll-2", "polling", {"poll_size": 2}),
        ("poll-2-weighted", "polling", {"poll_size": 2, "weight_by_speed": True}),
        ("ideal", "ideal", {}),
        ("ideal-weighted", "ideal", {"weight_by_speed": True}),
    ]
    configs = [
        base.with_updates(policy=p, policy_params=pp, load=1.25)
        for _, p, pp in specs
    ]
    results = run_once(benchmark, lambda: parallel_sweep(configs))

    table = ResultTable(["policy", "response_ms", "fast_server_share"])
    shares = {}
    for (label, _, _), result in zip(specs, results):
        counts = np.asarray(result.server_counts, dtype=float)
        share = counts[:8].sum() / counts.sum()
        shares[label] = (result.mean_response_time, share)
        table.add(policy=label, response_ms=result.mean_response_time_ms,
                  fast_server_share=share)
    report(
        "ablation_heterogeneous",
        "== Heterogeneous servers (8x 2.0-speed + 8x 1.0-speed) ==\n" + table.render(),
    )

    # Random sends half the traffic to slow servers -> much worse.
    assert shares["random"][1] < 0.55
    assert shares["poll-2"][0] < 0.6 * shares["random"][0]
    # Load-aware policies route the majority of work to fast servers.
    for label in ("poll-2", "poll-2-weighted", "ideal", "ideal-weighted"):
        assert shares[label][1] > 0.55, label
    # Speed weighting does not hurt (and the oracle variant helps).
    assert shares["poll-2-weighted"][0] < 1.15 * shares["poll-2"][0]
    assert shares["ideal-weighted"][0] < 1.1 * shares["ideal"][0]
