"""Ablation: pure staleness (global-snapshot JSQ) vs broadcast vs polling.

Isolates *information age* from announcement mechanics: stale_jsq gives
every client the same exact queue snapshot, refreshed every T, for
free. Mitzenmacher (2000) predicts that beyond a critical age,
min-of-stale-info is worse than random (herding); just-in-time polling
never crosses that line — the mechanism behind the paper's conclusion
that client-initiated pulling suits fine-grain services.
"""

from benchmarks.conftest import run_once, scaled
from repro.experiments import SimulationConfig, parallel_sweep
from repro.experiments.results import ResultTable

AGES = (0.001, 0.01, 0.05, 0.2, 1.0)  # snapshot refresh periods, seconds


def test_stale_info(benchmark, report):
    base = SimulationConfig(
        workload="poisson_exp", load=0.9, n_requests=scaled(25_000), seed=0,
    )
    configs = [
        base.with_updates(policy="stale_jsq",
                          policy_params={"update_interval": float(age)})
        for age in AGES
    ]
    configs += [
        base.with_updates(policy="stale_jsq",
                          policy_params={"update_interval": float(age),
                                         "local_increment": True})
        for age in AGES
    ]
    configs.append(base.with_updates(policy="random"))
    configs.append(base.with_updates(policy="polling", policy_params={"poll_size": 2}))
    results = run_once(benchmark, lambda: parallel_sweep(configs))

    plain = results[: len(AGES)]
    corrected = results[len(AGES) : 2 * len(AGES)]
    random_result, polling_result = results[-2], results[-1]

    table = ResultTable(["info_age_s", "stale_jsq_ms", "stale_jsq_local_ms"])
    for age, p, c in zip(AGES, plain, corrected):
        table.add(info_age_s=age, stale_jsq_ms=p.mean_response_time_ms,
                  stale_jsq_local_ms=c.mean_response_time_ms)
    footer = (
        f"random: {random_result.mean_response_time_ms:.1f} ms   "
        f"polling(d=2): {polling_result.mean_response_time_ms:.1f} ms"
    )
    report(
        "ablation_stale_info",
        "== Stale-information JSQ (poisson_exp, 90%) ==\n"
        + table.render() + "\n" + footer,
    )

    # Fresh snapshots beat random; sufficiently stale ones lose to it
    # (Mitzenmacher's herding crossover).
    assert plain[0].mean_response_time < 0.5 * random_result.mean_response_time
    assert plain[-1].mean_response_time > random_result.mean_response_time
    # Monotone degradation with age.
    responses = [r.mean_response_time for r in plain]
    assert responses[0] < responses[2] < responses[-1]
    # Local increments mitigate staleness at every age.
    for p, c in zip(plain[2:], corrected[2:]):
        assert c.mean_response_time < p.mean_response_time
    # Just-in-time polling never crosses random.
    assert polling_result.mean_response_time < random_result.mean_response_time
