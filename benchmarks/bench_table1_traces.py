"""Table 1: statistics of the evaluation traces.

Regenerates the synthesized Fine-Grain and Medium-Grain traces at their
full peak-portion sizes and reports their moments next to the published
targets (see DESIGN.md §5 for the OCR disambiguation).
"""

from benchmarks.conftest import run_once
from repro.experiments.figures import table1_traces
from repro.workload.synthesis import FINE_GRAIN_SPEC, MEDIUM_GRAIN_SPEC


def test_table1(benchmark, report):
    data = run_once(benchmark, lambda: table1_traces(seed=0))
    lines = [data.render(), "", "published targets:"]
    for spec in (MEDIUM_GRAIN_SPEC, FINE_GRAIN_SPEC):
        lines.append(
            f"  {spec.name:<20s} arrival {spec.arrival_interval_mean * 1e3:6.1f}/"
            f"{spec.arrival_interval_std * 1e3:6.1f} ms   service "
            f"{spec.service_time_mean * 1e3:5.1f}/{spec.service_time_std * 1e3:5.1f} ms"
        )
    report("table1_traces", "\n".join(lines))

    rows = {row["workload"]: row for row in data.table.rows}
    fine = rows[FINE_GRAIN_SPEC.name]
    assert abs(fine["service_mean_ms"] - 22.2) < 1.0
    medium = rows[MEDIUM_GRAIN_SPEC.name]
    assert abs(medium["service_mean_ms"] - 28.9) < 1.5
