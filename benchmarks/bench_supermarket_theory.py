"""Ablation: simulated polling vs. Mitzenmacher's mean-field theory.

The paper grounds its poll-size conclusion in Mitzenmacher's analytical
result. This bench compares our 16-server polling simulation against
the n -> infinity supermarket fixed point: the simulation should sit
slightly above theory (finite n, 290 µs poll RTT, 145 µs-stale reads)
with the same steep d=1 -> d=2 drop.
"""

import numpy as np

from benchmarks.conftest import run_once, scaled
from repro.analysis import supermarket_mean_response_time
from repro.experiments import SimulationConfig, parallel_sweep
from repro.experiments.results import ResultTable
from repro.net import PAPER_NET

MEAN_SERVICE = 50e-3
LOADS = (0.7, 0.9)
DS = (1, 2, 3, 8)


def run(benchmark):
    configs = []
    for load in LOADS:
        for d in DS:
            policy = ("random", {}) if d == 1 else ("polling", {"poll_size": d})
            configs.append(
                SimulationConfig(
                    policy=policy[0], policy_params=policy[1],
                    workload="poisson_exp", load=load,
                    n_requests=scaled(30_000), seed=0,
                )
            )
    return run_once(benchmark, lambda: parallel_sweep(configs))


def test_supermarket_theory(benchmark, report):
    results = run(benchmark)
    table = ResultTable(["load", "d", "simulated_ms", "theory_ms", "ratio"])
    by_key = {}
    index = 0
    for load in LOADS:
        for d in DS:
            result = results[index]
            index += 1
            simulated = result.mean_response_time - PAPER_NET.request_response_total
            theory = supermarket_mean_response_time(load, d, MEAN_SERVICE)
            by_key[(load, d)] = (simulated, theory)
            table.add(load=load, d=d, simulated_ms=simulated * 1e3,
                      theory_ms=theory * 1e3, ratio=simulated / theory)
    report(
        "supermarket_theory",
        "== Polling simulation vs supermarket mean field ==\n" + table.render(),
    )

    for (load, d), (simulated, theory) in by_key.items():
        # d=1 (random = parallel M/M/1) should match closely; d>=2 sits
        # in a one-sided band above the n->infinity limit.
        if d == 1:
            assert np.isclose(simulated, theory, rtol=0.12), (load, d)
        else:
            assert 0.85 * theory < simulated < 1.8 * theory, (load, d)
    # The d=1 -> 2 collapse dwarfs d=2 -> 8 refinement, in both worlds.
    sim_90 = {d: by_key[(0.9, d)][0] for d in DS}
    assert (sim_90[1] - sim_90[2]) > 3.0 * (sim_90[2] - sim_90[8])
