"""§2.4 ablation: control-message scaling.

The paper argues broadcast messaging scales with (load x servers x
clients) while random polling scales with (load x poll size) only —
i.e. broadcast fan-out grows with the client population while polling
cost per request is constant.
"""

from benchmarks.conftest import run_once, scaled
from repro.experiments.figures import message_scaling_section24


def test_message_scaling(benchmark, report):
    data = run_once(
        benchmark,
        lambda: message_scaling_section24(
            client_counts=(2, 4, 6),
            n_requests=scaled(10_000),
            seed=0,
        ),
    )
    report("ablation_messages", data.render())

    rows = {(r["n_clients"], r["policy"]): r for r in data.table.rows}
    broadcast_2 = rows[(2, "broadcast")]["control_messages_per_request"]
    broadcast_6 = rows[(6, "broadcast")]["control_messages_per_request"]
    polling_2 = rows[(2, "polling")]["control_messages_per_request"]
    polling_6 = rows[(6, "polling")]["control_messages_per_request"]

    # Broadcast control traffic scales ~linearly with client count.
    assert broadcast_6 > 2.5 * broadcast_2
    # Polling cost per request is exactly 2*d regardless of clients.
    assert abs(polling_2 - polling_6) < 0.01
    assert abs(polling_2 - 4.0) < 0.01  # d=2 -> 2 polls + 2 replies
