"""Large-N scale benchmark: fast path vs exact heap at 1000 servers.

Produces the second persistent perf-trajectory artifact (ISSUE 6),
``BENCH_scale.json``: requests/sec for the heap engine and the numpy
fast path on each homogeneous policy at N=1000, the resulting speedup
ratios, and a mean-field cross-check of the fast path's mean response
time. The JSON is schema-validated on write, and the speedup floor
(>=10x on random and broadcast) is asserted here so a fast-path
performance regression fails the bench run itself, not just the later
baseline comparison.
"""

from benchmarks.conftest import run_once, scaled

from repro.experiments.perf import (
    SCALE_FLOOR_POLICIES,
    SCALE_SPEEDUP_FLOOR,
    render_bench,
    save_bench,
    scale_trajectory,
)


def test_scale_trajectory_artifact(benchmark, report):
    """Heap vs fast at N=1000 -> schema-versioned BENCH_scale.json."""
    heap_requests = scaled(20_000)

    def build():
        return scale_trajectory(
            n_servers=1_000,
            heap_requests=heap_requests,
            fast_requests=heap_requests * 10,
            policies=("random", "polling", "broadcast", "stale_jsq"),
        )

    data = run_once(benchmark, build)
    path = save_bench(data, "BENCH_scale.json")
    report("bench_scale", render_bench(data) + f"\n[written to {path}]")

    assert len(data["entries"]) == 8  # 2 engines x 4 policies
    for policy in SCALE_FLOOR_POLICIES:
        speedup = data["speedups"][policy]
        assert speedup >= SCALE_SPEEDUP_FLOOR, (
            f"fast path speedup on {policy} fell to {speedup:.1f}x "
            f"(floor {SCALE_SPEEDUP_FLOOR:.0f}x)"
        )
    assert data["meanfield_ok"], "mean-field cross-check failed: " + "; ".join(
        f"{cell['policy']} err={cell['rel_error']:.2%}" for cell in data["meanfield"]
    )
