"""Figure 4: impact of poll size — simulation model (16 servers).

Paper shape (all three panels): random is worst and degrades sharply
with load; poll size 2 captures most of the gap to IDEAL; poll sizes
3/4/8 add only marginal improvement and never degrade (the idealized
simulation has no polling overhead).
"""

from benchmarks.conftest import run_once, scaled
from repro.experiments.figures import figure4_pollsize
from repro.experiments.report import ascii_chart, format_series

LOADS = (0.5, 0.6, 0.7, 0.8, 0.9)


def test_fig4(benchmark, report):
    data = run_once(
        benchmark,
        lambda: figure4_pollsize(
            loads=LOADS,
            n_requests=scaled(20_000),
            seed=0,
            model="simulation",
        ),
    )
    sections = []
    for workload in dict.fromkeys(data.table.column("workload")):
        series = {}
        for policy in ("random", "poll-2", "poll-3", "poll-4", "poll-8", "ideal"):
            rows = [
                r for r in data.table.rows
                if r["workload"] == workload and r["policy"] == policy
            ]
            series[policy] = [r["response_ms"] for r in rows]
        sections.append(
            f"<{workload}>  (mean response time, ms)\n"
            + format_series("load", [f"{l:.0%}" for l in LOADS], series)
            + "\n"
            + ascii_chart([f"{l:.0%}" for l in LOADS], series, logy=True,
                          y_label="resp ms")
        )
    report("fig4_pollsize_sim", "== Figure 4 (simulation) ==\n" + "\n\n".join(sections))

    def response(workload, load, policy):
        for r in data.table.rows:
            if (r["workload"], r["load"], r["policy"]) == (workload, load, policy):
                return r["response_ms"]
        raise KeyError((workload, load, policy))

    for workload in ("poisson_exp", "fine_grain", "medium_grain"):
        r90 = {p: response(workload, 0.9, p) for p in
               ("random", "poll-2", "poll-3", "poll-8", "ideal")}
        # Ordering at 90%: ideal <= poll-8 <= poll-3 <= poll-2 << random.
        assert r90["poll-2"] < 0.65 * r90["random"]
        assert r90["ideal"] <= r90["poll-8"] * 1.05
        # d=2 already close to ideal; d=8 does NOT degrade in simulation.
        assert r90["poll-8"] <= r90["poll-2"] * 1.10
        # The poll-2 -> poll-8 gain is small next to the random -> poll-2 gain.
        assert (r90["poll-2"] - r90["poll-8"]) < 0.35 * (r90["random"] - r90["poll-2"])
