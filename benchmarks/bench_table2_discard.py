"""Table 2: performance improvement of discarding slow-responding polls.

Prototype model, poll size 3, servers 90% busy. Paper values: Medium-
Grain -0.4% (slight loss), Poisson/Exp +3.2%, Fine-Grain +8.3%; mean
polling time drops from ~2.6-2.7 ms to ~1.0-1.1 ms. Our overheads are
calibrated to the §3.2 slow-poll profile, which yields somewhat larger
absolute polling times (see EXPERIMENTS.md); the *shape* — fine-grain
gains the most, medium-grain essentially nothing, and polling time
drops by more than half — is asserted below.
"""

from benchmarks.conftest import run_once, scaled
from repro.experiments.figures import table2_discard


def test_table2(benchmark, report):
    data = run_once(
        benchmark,
        lambda: table2_discard(n_requests=scaled(25_000, minimum=12_000), seed=0),
    )
    report("table2_discard", data.render())

    rows = {row["workload"]: row for row in data.table.rows}
    fine = rows["fine_grain"]
    medium = rows["medium_grain"]
    poisson = rows["poisson_exp"]

    # Polling time drops by more than half for every workload.
    for row in rows.values():
        assert row["opt_poll_ms"] < 0.6 * row["orig_poll_ms"]

    # Fine-grain gains the most; medium-grain ~nothing (paper: -0.4%;
    # its heavy service tail makes the cell noisy, hence the wide band).
    assert fine["improvement"] > 0.03
    assert fine["improvement"] > medium["improvement"]
    assert fine["improvement"] > poisson["improvement"] - 0.01
    assert -0.12 < medium["improvement"] < 0.08

    # The paper attributes +5.2% to avoided stale information beyond the
    # polling-time saving; in our model that residual hovers around
    # 0 ± 1% across seeds (see EXPERIMENTS.md) — assert only that the
    # discard optimization does not *hurt* decision quality materially.
    assert fine["improvement_excl_polling"] > -0.02
