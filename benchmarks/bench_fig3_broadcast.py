"""Figure 3: impact of broadcast frequency (16 servers).

Paper shape: at 90% load, a 1 s mean broadcast interval is an order of
magnitude slower than IDEAL for fine-grain workloads (Poisson/Exp 50 ms
and the Fine-Grain trace); at 50% load the degradation is smaller (up
to ~3x) but still significant; millisecond-scale intervals approach
IDEAL.
"""

from benchmarks.conftest import run_once, scaled
from repro.experiments.figures import figure3_broadcast
from repro.experiments.report import ascii_chart, format_series

INTERVALS = (0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0)


def test_fig3(benchmark, report):
    data = run_once(
        benchmark,
        lambda: figure3_broadcast(
            intervals=INTERVALS,
            n_requests=scaled(15_000),
            seed=0,
        ),
    )
    sections = []
    for load in (0.9, 0.5):
        series = {}
        for workload in dict.fromkeys(data.table.column("workload")):
            rows = [
                r for r in data.table.rows
                if r["load"] == load and r["workload"] == workload
            ]
            series[workload] = [r["normalized_to_ideal"] for r in rows]
        sections.append(
            f"<server {load:.0%} busy>  (mean response normalized to IDEAL)\n"
            + format_series(
                "interval_ms", [i * 1e3 for i in INTERVALS], series
            )
            + "\n"
            + ascii_chart([i * 1e3 for i in INTERVALS], series, logy=True,
                          y_label="x ideal")
        )
    report("fig3_broadcast", "== Figure 3 ==\n" + "\n\n".join(sections))

    def norm(load, workload, interval):
        for r in data.table.rows:
            if (
                r["load"] == load
                and r["workload"] == workload
                and abs(r["interval_ms"] - interval * 1e3) < 1e-9
            ):
                return r["normalized_to_ideal"]
        raise KeyError((load, workload, interval))

    # 90% busy, fine-grain workloads: ~order of magnitude at 1s interval.
    assert norm(0.9, "poisson_exp", 1.0) > 6.0
    assert norm(0.9, "fine_grain", 1.0) > 6.0
    # 50% busy: degradation present but far smaller.
    assert 1.2 < norm(0.5, "poisson_exp", 1.0) < 8.0
    # Fast broadcasting approaches IDEAL.
    assert norm(0.9, "poisson_exp", 0.002) < 1.6
    # Degradation grows with the interval (compare endpoints).
    assert norm(0.9, "poisson_exp", 1.0) > norm(0.9, "poisson_exp", 0.01)
