"""Ablation: does arrival burstiness change the paper's conclusions?

The paper chose Poisson arrivals for peak-time traffic (§1.1) while
acknowledging internet arrivals are burstier over long horizons. This
bench swaps in a 2-phase MMPP with a 5:1 rate swing (same mean rate)
and checks that the *ranking* — ideal < poll-2 < random — survives,
even though absolute response times inflate for every policy.
"""

from benchmarks.conftest import run_once, scaled
from repro.experiments import SimulationConfig, parallel_sweep
from repro.experiments.results import ResultTable

POLICIES = [
    ("random", "random", {}),
    ("poll-2", "polling", {"poll_size": 2}),
    ("ideal", "ideal", {}),
]


def test_burstiness(benchmark, report):
    configs = []
    keys = []
    for wl_label, workload, params in [
        ("poisson", "poisson_exp", {}),
        ("mmpp 5:1", "mmpp_exp", {"burst_ratio": 5.0, "sojourn": 1.0}),
    ]:
        for p_label, policy, p_params in POLICIES:
            configs.append(
                SimulationConfig(
                    workload=workload, workload_params=params,
                    policy=policy, policy_params=p_params,
                    load=0.8, n_servers=16, n_requests=scaled(25_000), seed=0,
                )
            )
            keys.append((wl_label, p_label))
    results = run_once(benchmark, lambda: parallel_sweep(configs))
    by_key = dict(zip(keys, results))

    table = ResultTable(["arrivals", "policy", "response_ms"])
    for (wl_label, p_label), result in zip(keys, results):
        table.add(arrivals=wl_label, policy=p_label,
                  response_ms=result.mean_response_time_ms)
    report(
        "ablation_burstiness",
        "== Arrival burstiness (80% load, 16 servers) ==\n" + table.render(),
    )

    for wl_label in ("poisson", "mmpp 5:1"):
        ideal = by_key[(wl_label, "ideal")].mean_response_time
        poll2 = by_key[(wl_label, "poll-2")].mean_response_time
        random_rt = by_key[(wl_label, "random")].mean_response_time
        assert ideal < poll2 < random_rt, wl_label
    # Bursts hurt everyone in absolute terms.
    assert (
        by_key[("mmpp 5:1", "ideal")].mean_response_time
        > by_key[("poisson", "ideal")].mean_response_time
    )
