"""Ablation: the paper's winner vs. its modern successors.

Power-of-d-choices — the paper's recommendation — went on to ship in
Envoy, nginx, and HAProxy; Join-Idle-Queue (Lu et al., 2011) and plain
client-local least-connections are the other deployed answers. This
bench races them across service granularities at 90% load (simulation
model: same information physics for all).

Expected shape: polling d=2 and JIQ are close (both near-oracle at
moderate load); JIQ pays no poll latency, which matters most when
services are finest; least-connections trails because each client only
sees 1/n_clients of the traffic.
"""

from benchmarks.conftest import run_once, scaled
from repro.experiments import SimulationConfig, parallel_sweep
from repro.experiments.results import ResultTable

WORKLOADS = [
    ("2ms exp", "poisson_exp", {"mean_service": 2e-3}),
    ("50ms exp", "poisson_exp", {"mean_service": 50e-3}),
    ("fine-grain trace", "fine_grain", {}),
]
POLICIES = [
    ("random", "random", {}),
    ("least-conn", "least_connections", {}),
    ("jiq", "jiq", {}),
    ("poll-2", "polling", {"poll_size": 2}),
    ("ideal", "ideal", {}),
]


def test_modern_policies(benchmark, report):
    configs = []
    keys = []
    for wl_label, workload, wl_params in WORKLOADS:
        for p_label, policy, p_params in POLICIES:
            configs.append(
                SimulationConfig(
                    workload=workload, workload_params=wl_params,
                    policy=policy, policy_params=p_params,
                    load=0.9, n_servers=16, n_requests=scaled(20_000), seed=0,
                )
            )
            keys.append((wl_label, p_label))
    results = run_once(benchmark, lambda: parallel_sweep(configs))
    by_key = dict(zip(keys, results))

    table = ResultTable(["workload", "policy", "response_ms", "vs_ideal"])
    for wl_label, _, _ in WORKLOADS:
        ideal = by_key[(wl_label, "ideal")].mean_response_time
        for p_label, _, _ in POLICIES:
            result = by_key[(wl_label, p_label)]
            table.add(workload=wl_label, policy=p_label,
                      response_ms=result.mean_response_time_ms,
                      vs_ideal=result.mean_response_time / ideal)
    report(
        "ablation_modern",
        "== Modern successors at 90% load (simulation model) ==\n" + table.render(),
    )

    for wl_label, _, _ in WORKLOADS:
        random_rt = by_key[(wl_label, "random")].mean_response_time
        for p_label in ("least-conn", "jiq", "poll-2"):
            assert by_key[(wl_label, p_label)].mean_response_time < random_rt, (
                wl_label, p_label,
            )
        # The two load-aware front-runners stay within 2x of each other.
        jiq = by_key[(wl_label, "jiq")].mean_response_time
        poll2 = by_key[(wl_label, "poll-2")].mean_response_time
        assert 0.5 < jiq / poll2 < 2.0
