"""Shared benchmark plumbing.

Every bench regenerates one table/figure of the paper and both prints it
(visible with ``pytest -s``) and writes it to
``benchmarks/output/<name>.txt`` so the reproduction artifacts survive
output capturing.

Scale control: set ``REPRO_BENCH_SCALE`` (float, default 1.0) to shrink
or grow the request counts, e.g. ``REPRO_BENCH_SCALE=0.25 pytest
benchmarks/`` for a quick pass.
"""

import os
from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


def bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def scaled(n: int, minimum: int = 2000) -> int:
    return max(minimum, int(n * bench_scale()))


@pytest.fixture
def report():
    """report(name, text): persist + print a reproduction artifact."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _report(name: str, text: str) -> None:
        path = OUTPUT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[written to {path}]")

    return _report


def run_once(benchmark, fn):
    """Run a whole-figure driver exactly once under the benchmark timer."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
