"""Figure 2: impact of delay on load-index inaccuracy (1 server).

Paper shape: at 50% load the inaccuracy rises quickly to a moderate
plateau (the Eq. 1 bound, 1.33 for Poisson/Exp); at 90% load it keeps
growing and reaches ~3 around a delay of 10 mean service times.
"""

from benchmarks.conftest import run_once, scaled
from repro.analysis import eq1_upperbound
from repro.experiments.figures import figure2_inaccuracy
from repro.experiments.report import format_series


def test_fig2(benchmark, report):
    delays = (0.0, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 100.0)
    data = run_once(
        benchmark,
        lambda: figure2_inaccuracy(
            delays_normalized=delays,
            n_requests=scaled(300_000, minimum=50_000),
            seed=0,
        ),
    )
    sections = []
    for load in (0.9, 0.5):
        series = {}
        for workload in dict.fromkeys(data.table.column("workload")):
            rows = [
                r for r in data.table.rows
                if r["load"] == load and r["workload"] == workload
            ]
            series[workload] = [r["inaccuracy"] for r in rows]
        bound = eq1_upperbound(load)
        sections.append(
            f"<server {load:.0%} busy>  Eq.1 upper bound (Poisson/Exp): {bound:.2f}\n"
            + format_series("delay/mean_service", list(delays), series)
        )
    report("fig2_inaccuracy", "== Figure 2 ==\n" + "\n\n".join(sections))

    # Shape assertions: monotone growth toward the bound; 90% >> 50%.
    poisson_rows_90 = [
        r["inaccuracy"] for r in data.table.rows
        if r["load"] == 0.9 and "Poisson" in r["workload"]
    ]
    poisson_rows_50 = [
        r["inaccuracy"] for r in data.table.rows
        if r["load"] == 0.5 and "Poisson" in r["workload"]
    ]
    assert poisson_rows_90[0] == 0.0
    assert poisson_rows_90[-1] > 3.0 * poisson_rows_50[-1]
    assert abs(poisson_rows_50[-1] - eq1_upperbound(0.5)) < 0.25
    # At delay ~10 service times and 90% load the error is already ~3.
    index_10 = list((0.0, 0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 100.0)).index(10.0)
    assert poisson_rows_90[index_10] > 2.0
