"""§5 ablation: what a faster network (VI Architecture / RDMA) changes.

The paper predicts: "a high-performance network layer may allow
efficient and high frequency server broadcasts, which improves the
feasibility of the broadcast policy [... and] the overhead of the
random polling policy with a large poll size might not be as severe".
We scale the measured latency constants down 10x and check both
predictions on the simulation model (where network latency is the only
overhead a faster fabric removes).
"""

from dataclasses import replace

from benchmarks.conftest import run_once, scaled
from repro.cluster.system import ServiceCluster
from repro.core.registry import make_policy
from repro.experiments import SimulationConfig
from repro.experiments.results import ResultTable
from repro.net import PAPER_NET
from repro.sim.rng import RngHub
from repro.workload.workloads import make_workload

FAST_NET = replace(
    PAPER_NET,
    request_response_total=PAPER_NET.request_response_total / 10,
    udp_rtt=PAPER_NET.udp_rtt / 10,
    tcp_rtt_nosetup=PAPER_NET.tcp_rtt_nosetup / 10,
)

CASES = [
    ("broadcast 5ms", "broadcast", {"mean_interval": 0.005}),
    ("polling d=2", "polling", {"poll_size": 2}),
    ("polling d=8", "polling", {"poll_size": 8}),
    ("ideal", "ideal", {}),
]


def _run(config: SimulationConfig, constants) -> float:
    """Mean response time for a config under custom network constants.

    (The standard runner pins constants to the paper's values, so this
    bench builds the cluster directly.)
    """
    workload = make_workload(config.workload, **config.workload_params)
    hub = RngHub(config.seed)
    gaps, services = workload.generate(hub.stream("workload"), config.n_requests)
    target = float(services.mean()) / (config.n_servers * config.load)
    gaps = gaps * (target / float(gaps.mean()))
    cluster = ServiceCluster(
        n_servers=config.n_servers,
        policy=make_policy(config.policy, **config.policy_params),
        seed=config.seed,
        n_clients=config.n_clients,
        constants=constants,
    )
    cluster.load_workload(gaps, services)
    metrics = cluster.run()
    return metrics.summary(config.warmup_fraction)["mean_response_time"]


def test_network_speed(benchmark, report):
    # A fine-grain setting where message latency actually matters:
    # 2 ms services make the 516 µs / 290 µs constants a visible cost.
    base = SimulationConfig(
        workload="poisson_exp", workload_params={"mean_service": 2e-3},
        load=0.9, n_servers=16, n_requests=scaled(20_000), seed=0,
    )

    def run_all():
        out = {}
        for label, policy, params in CASES:
            config = base.with_updates(policy=policy, policy_params=params)
            out[(label, "paper")] = _run(config, PAPER_NET)
            out[(label, "10x")] = _run(config, FAST_NET)
        return out

    results = run_once(benchmark, run_all)

    table = ResultTable(["policy", "paper_net_ms", "fast_net_ms", "speedup"])
    for label, _, _ in CASES:
        paper_ms = results[(label, "paper")] * 1e3
        fast_ms = results[(label, "10x")] * 1e3
        table.add(policy=label, paper_net_ms=paper_ms, fast_net_ms=fast_ms,
                  speedup=paper_ms / fast_ms)
    report(
        "ablation_network_speed",
        "== §5: 10x faster network (2ms services, 90% load) ==\n" + table.render(),
    )

    # Every policy benefits; message-dependent policies benefit at least
    # as much as the oracle (which only pays request/response latency).
    for label, _, _ in CASES:
        assert results[(label, "10x")] < results[(label, "paper")]
    poll8_gain = results[("polling d=8", "paper")] / results[("polling d=8", "10x")]
    ideal_gain = results[("ideal", "paper")] / results[("ideal", "10x")]
    assert poll8_gain > ideal_gain * 0.95
