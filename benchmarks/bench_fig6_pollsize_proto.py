"""Figure 6: impact of poll size — prototype model (16 servers).

Paper shape: Medium-Grain and Poisson/Exp largely confirm the
simulation results, but for the Fine-Grain trace poll size 8 is *far
worse* than small poll sizes and even (slightly) worse than pure random
— excessive polling overhead (longer polling delays + staler load
indices) bites exactly where service times are small and the calibrated
full-load point leaves no CPU headroom.
"""

from benchmarks.conftest import run_once, scaled
from repro.experiments.figures import figure6_pollsize
from repro.experiments.report import ascii_chart, format_series

LOADS = (0.5, 0.6, 0.7, 0.8, 0.9)


def test_fig6(benchmark, report):
    data = run_once(
        benchmark,
        lambda: figure6_pollsize(
            loads=LOADS,
            n_requests=scaled(15_000),
            seed=0,
        ),
    )
    sections = []
    for workload in dict.fromkeys(data.table.column("workload")):
        series = {}
        for policy in ("random", "poll-2", "poll-3", "poll-4", "poll-8", "ideal"):
            rows = [
                r for r in data.table.rows
                if r["workload"] == workload and r["policy"] == policy
            ]
            series[policy] = [r["response_ms"] for r in rows]
        sections.append(
            f"<{workload}>  (mean response time, ms; 'ideal' = centralized manager)\n"
            + format_series("load", [f"{l:.0%}" for l in LOADS], series)
            + "\n"
            + ascii_chart([f"{l:.0%}" for l in LOADS], series, logy=True,
                          y_label="resp ms")
        )
    report(
        "fig6_pollsize_proto", "== Figure 6 (prototype) ==\n" + "\n\n".join(sections)
    )

    def response(workload, load, policy):
        for r in data.table.rows:
            if (r["workload"], r["load"], r["policy"]) == (workload, load, policy):
                return r["response_ms"]
        raise KeyError((workload, load, policy))

    # Fine-Grain at 90%: poll-8 collapses below random; small polls fine.
    fine = {p: response("fine_grain", 0.9, p) for p in
            ("random", "poll-2", "poll-3", "poll-8")}
    assert fine["poll-8"] > fine["random"]
    assert fine["poll-8"] > 2.0 * fine["poll-3"]
    assert fine["poll-2"] < fine["random"]
    assert fine["poll-3"] < fine["random"]

    # Medium-Grain largely confirms the simulation: poll-8 not worse than
    # random, small polls beat random clearly.
    medium = {p: response("medium_grain", 0.9, p) for p in
              ("random", "poll-2", "poll-8")}
    assert medium["poll-8"] < medium["random"]
    assert medium["poll-2"] < 0.65 * medium["random"]

    # At modest load (50%) poll size does not matter much anywhere.
    for workload in ("fine_grain", "medium_grain", "poisson_exp"):
        r50 = {p: response(workload, 0.5, p) for p in ("poll-2", "poll-8")}
        assert r50["poll-8"] < 2.0 * r50["poll-2"]
