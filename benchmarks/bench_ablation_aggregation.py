"""Ablation: aggregation amplifies balancing quality (the paper's intro).

"with the trend towards delivering more feature-rich services in real
time, large number of fine-grain sub-services need to be aggregated
within a short period of time." A page that performs K sequential
sub-accesses sums K queueing delays, so the random-vs-polling gap
compounds with K — the quantitative version of the paper's motivation
for getting fine-grain balancing right.

Built on the application framework: a front service whose handler makes
K nested calls into a 2 ms backend pool.
"""

import numpy as np

from benchmarks.conftest import run_once, scaled
from repro.cluster import ApplicationCluster, ServiceSpec, call, compute
from repro.experiments.results import ResultTable

BACKEND_MS = 2e-3
N_BACKENDS = 8
LOAD = 0.85


def build(fanout: int, poll_size: int, n_pages: int, seed: int = 0):
    app = ApplicationCluster(n_nodes=N_BACKENDS + 2, seed=seed, workers=1,
                             poll_size=poll_size)

    def backend(ctx, request):
        yield compute(float(request.payload))
        return None

    def front(ctx, request):
        for service_time in request.payload:
            yield call("backend", payload=service_time)
        return None

    app.place_service(ServiceSpec("backend", replication=N_BACKENDS),
                      node_ids=list(range(N_BACKENDS)), handler=backend)
    # The front tier blocks its worker threads on nested calls, so it
    # needs a deep pool (Neptune sizes pools per service); the backend
    # is CPU-bound and keeps one worker per node.
    app.place_service(ServiceSpec("front", replication=2),
                      node_ids=[N_BACKENDS, N_BACKENDS + 1], handler=front,
                      workers=512)

    rng = np.random.default_rng(seed)
    # Backend utilization: n_pages/s * fanout * service / N = LOAD.
    page_rate = LOAD * N_BACKENDS / (fanout * BACKEND_MS)
    gaps = rng.exponential(1.0 / page_rate, n_pages)
    sub_services = [rng.exponential(BACKEND_MS, fanout) for _ in range(n_pages)]
    return app, gaps, sub_services


def run_case(fanout: int, poll_size: int, n_pages: int) -> float:
    app, gaps, sub_services = build(fanout, poll_size, n_pages)
    tally = app.run_workload(
        "front", gaps, payload_fn=lambda i: sub_services[i]
    )
    values = tally.values()
    return float(values[int(0.1 * len(values)):].mean())


def test_aggregation(benchmark, report):
    n_pages = scaled(4000, minimum=1500)
    fanouts = (1, 4, 16)

    def run_all():
        return {
            (fanout, label): run_case(fanout, poll_size, n_pages)
            for fanout in fanouts
            for label, poll_size in (("random", 0), ("poll-2", 2))
        }

    results = run_once(benchmark, run_all)

    table = ResultTable(["fanout", "random_ms", "poll2_ms", "random_over_poll2"])
    for fanout in fanouts:
        random_rt = results[(fanout, "random")]
        poll2_rt = results[(fanout, "poll-2")]
        table.add(fanout=fanout, random_ms=random_rt * 1e3,
                  poll2_ms=poll2_rt * 1e3,
                  random_over_poll2=random_rt / poll2_rt)
    report(
        "ablation_aggregation",
        "== Aggregated fine-grain sub-services (2ms backend, 85% load) ==\n"
        + table.render(),
    )

    # Both policies pay ~linear cost in fanout, but random pays more per
    # sub-access; the absolute gap compounds with K.
    gap_1 = results[(1, "random")] - results[(1, "poll-2")]
    gap_16 = results[(16, "random")] - results[(16, "poll-2")]
    assert gap_16 > 6.0 * gap_1
    for fanout in fanouts:
        assert results[(fanout, "poll-2")] < results[(fanout, "random")]
