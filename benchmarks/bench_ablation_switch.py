"""Substrate validation: constant latency vs. an explicit switch model.

The paper treats its Lucent P550 as a constant-latency fabric. This
bench re-runs a polling experiment with the switched-Ethernet model
(per-port FIFO egress + serialization at 100 Mb/s) layered under the
same protocol-stack latencies, and checks the abstraction: at the
paper's message rates the switch adds only serialization-scale delay,
leaving mean response times essentially unchanged.
"""

from benchmarks.conftest import run_once, scaled
from repro.cluster.system import ServiceCluster
from repro.core.registry import make_policy
from repro.experiments.results import ResultTable
from repro.net import SwitchedEthernet
from repro.sim.rng import RngHub
from repro.workload.workloads import make_workload

LOAD = 0.9
N_SERVERS = 16
N_CLIENTS = 6


def _run(n_requests: int, with_switch: bool, poll_size: int) -> float:
    cluster = ServiceCluster(
        n_servers=N_SERVERS,
        policy=make_policy("polling", poll_size=poll_size),
        seed=0,
        n_clients=N_CLIENTS,
    )
    if with_switch:
        cluster.network.switch = SwitchedEthernet(
            cluster.sim,
            n_ports=N_SERVERS + N_CLIENTS,
            bandwidth_bps=100e6,
            propagation=0.0,  # propagation already inside the constants
        )
    workload = make_workload("fine_grain")
    gaps, services = workload.generate(RngHub(0).stream("workload"), n_requests)
    target = float(services.mean()) / (N_SERVERS * LOAD)
    cluster.load_workload(gaps * (target / float(gaps.mean())), services)
    metrics = cluster.run()
    return metrics.summary(0.1)["mean_response_time"]


def test_switch_abstraction(benchmark, report):
    n = scaled(15_000)

    def run_all():
        return {
            (with_switch, d): _run(n, with_switch, d)
            for with_switch in (False, True)
            for d in (2, 8)
        }

    results = run_once(benchmark, run_all)

    table = ResultTable(["poll_size", "constant_ms", "switched_ms", "delta"])
    for d in (2, 8):
        constant = results[(False, d)]
        switched = results[(True, d)]
        table.add(poll_size=d, constant_ms=constant * 1e3,
                  switched_ms=switched * 1e3,
                  delta=switched / constant - 1.0)
    report(
        "ablation_switch",
        "== Constant-latency vs switched-Ethernet substrate "
        "(fine-grain, 90%) ==\n" + table.render(),
    )

    # The paper's abstraction holds: explicit contention changes mean
    # response by well under 10% even at d=8 message rates.
    for d in (2, 8):
        delta = abs(results[(True, d)] / results[(False, d)] - 1.0)
        assert delta < 0.10, (d, delta)
